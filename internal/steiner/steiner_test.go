package steiner

import (
	"math"
	"math/rand"
	"testing"

	"netplace/internal/gen"
	"netplace/internal/graph"
)

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	return gen.ErdosRenyi(n, 0.35, rng, gen.UniformWeights(rng, 1, 10))
}

func TestExactOnTreeEqualsSubtree(t *testing.T) {
	// On a tree the minimum Steiner tree is the unique spanning subtree.
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := gen.RandomTree(n, rng, gen.UniformWeights(rng, 1, 5))
		k := 1 + rng.Intn(minInt(n, 6))
		terms := rng.Perm(n)[:k]
		got := Exact(g, terms)
		want := g.SubtreeSteiner(terms)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: Exact %v, subtree %v (terms %v)", seed, got, want, terms)
		}
	}
}

func TestExactTwoTerminalsIsShortestPath(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randomConnected(rng, n)
		dist := g.AllPairs()
		u, v := rng.Intn(n), rng.Intn(n)
		got := Exact(g, []int{u, v})
		if math.Abs(got-dist[u][v]) > 1e-9 {
			t.Fatalf("seed %d: Exact {%d,%d} = %v, want shortest path %v", seed, u, v, got, dist[u][v])
		}
	}
}

func TestApproxMSTWithinTwiceExact(t *testing.T) {
	// Claim 2's engine: the metric-closure MST is at most 2x the minimum
	// Steiner tree, and never below it.
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := randomConnected(rng, n)
		dist := g.AllPairs()
		k := 2 + rng.Intn(minInt(n, 7)-1)
		terms := rng.Perm(n)[:k]
		mst := ApproxMST(dist, terms)
		exact := ExactMetric(dist, terms)
		if mst < exact-1e-9 {
			t.Fatalf("seed %d: MST %v below Steiner optimum %v", seed, mst, exact)
		}
		if mst > 2*exact+1e-9 {
			t.Fatalf("seed %d: MST %v exceeds 2x Steiner %v", seed, mst, exact)
		}
	}
}

func TestExactMetricMatchesExactOnClosure(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		g := randomConnected(rng, n)
		dist := g.AllPairs()
		k := 2 + rng.Intn(minInt(n, 6)-1)
		terms := rng.Perm(n)[:k]
		a := Exact(g, terms)
		b := ExactMetric(dist, terms)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("seed %d: Exact %v != ExactMetric %v", seed, a, b)
		}
	}
}

func TestSteinerBeatsMSTSomewhere(t *testing.T) {
	// The classic gap instance: a star where only the leaves are terminals.
	// MST over the leaf metric costs 2*(k-1), Steiner (through the hub)
	// costs k.
	k := 6
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, i, 1)
	}
	terms := make([]int, k)
	for i := range terms {
		terms[i] = i + 1
	}
	dist := g.AllPairs()
	mst := ApproxMST(dist, terms)
	exact := Exact(g, terms)
	if exact != float64(k) {
		t.Fatalf("Steiner %v, want %d", exact, k)
	}
	if mst != float64(2*(k-1)) {
		t.Fatalf("MST %v, want %d", mst, 2*(k-1))
	}
}

func TestDegenerateTerminalSets(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if Exact(g, nil) != 0 || Exact(g, []int{1}) != 0 {
		t.Fatal("0- and 1-terminal Steiner trees must cost 0")
	}
	if ApproxMST(g.AllPairs(), []int{2}) != 0 {
		t.Fatal("singleton MST must cost 0")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
