package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomBucketable builds a random connected graph whose weight profile
// admits the bucketed kernel: positive weights with bounded spread, plus
// an optional sprinkle of zero-weight edges (which must relax within the
// current bucket without breaking exactness).
func randomBucketable(rng *rand.Rand, n, extra int, zeros bool) *Graph {
	g := New(n)
	w := func() float64 {
		if zeros && rng.Intn(8) == 0 {
			return 0
		}
		return 1 + float64(rng.Intn(7))
	}
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, w())
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, w())
		}
	}
	return g
}

// The bucketed SSSP must produce bit-identical distances to the heap
// Dijkstra on every weight profile it accepts — the invariant that lets
// the lazy oracle swap row kernels without perturbing a single placement.
func TestRowBucketsMatchesDijkstraBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	shapes := []struct {
		name  string
		build func() *Graph
	}{
		{"unit-grid", func() *Graph {
			// Hand-rolled 12x12 unit grid: the 50k bench topology in miniature.
			const side = 12
			g := New(side * side)
			for r := 0; r < side; r++ {
				for c := 0; c < side; c++ {
					v := r*side + c
					if c+1 < side {
						g.AddEdge(v, v+1, 1)
					}
					if r+1 < side {
						g.AddEdge(v, v+side, 1)
					}
				}
			}
			return g
		}},
		{"int-weights", func() *Graph { return randomBucketable(rng, 150, 250, false) }},
		{"zero-edges", func() *Graph { return randomBucketable(rng, 150, 250, true) }},
		{"disconnected", func() *Graph {
			g := New(40)
			for v := 1; v < 20; v++ {
				g.AddEdge(v-1, v, 2)
			}
			for v := 21; v < 40; v++ {
				g.AddEdge(v-1, v, 3)
			}
			return g
		}},
	}
	for _, sh := range shapes {
		g := sh.build()
		if !g.csr().canBucket() {
			t.Fatalf("%s: weight profile unexpectedly rejects bucketing", sh.name)
		}
		sc := NewScanner(g)
		heap := make([]float64, g.N())
		bucket := make([]float64, g.N())
		for trial := 0; trial < 12; trial++ {
			src := rng.Intn(g.N())
			sc.RowInto(src, heap)
			sc.RowBucketsInto(src, bucket)
			for v := range heap {
				if math.Float64bits(heap[v]) != math.Float64bits(bucket[v]) {
					t.Fatalf("%s: d(%d,%d) differs: heap %v bucket %v", sh.name, src, v, heap[v], bucket[v])
				}
			}
		}
	}
}

// Wide or fractional weight spreads must fall back to the heap kernel
// (still exact, via Scan) rather than degrade into a huge bucket array.
func TestScanBucketsFallsBackOnWideSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := New(100)
	for v := 1; v < 100; v++ {
		g.AddEdge(rng.Intn(v), v, 0.001+rng.Float64()*100)
	}
	g.AddEdge(0, 99, 1e-6) // forces wmax/wmin far past maxBucketSpread
	if g.csr().canBucket() {
		t.Fatalf("spread %v/%v unexpectedly bucketable", g.csr().wmax, g.csr().wmin)
	}
	sc := NewScanner(g)
	heap := sc.RowInto(7, make([]float64, 100))
	bucket := sc.RowBucketsInto(7, make([]float64, 100))
	for v := range heap {
		if math.Float64bits(heap[v]) != math.Float64bits(bucket[v]) {
			t.Fatalf("fallback row differs at %d: %v vs %v", v, heap[v], bucket[v])
		}
	}
}

// ScanBuckets must visit nodes in nondecreasing distance, breaking ties
// within a bucket by ascending node index, and honor early stop.
func TestScanBucketsOrderAndEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	g := randomBucketable(rng, 120, 200, false)
	var order []int
	var dists []float64
	ScanBuckets(g, 5, func(v int, d float64) bool {
		order = append(order, v)
		dists = append(dists, d)
		return true
	})
	if len(order) != g.N() {
		t.Fatalf("visited %d of %d nodes", len(order), g.N())
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatalf("distance regressed at visit %d: %v after %v", i, dists[i], dists[i-1])
		}
		if dists[i] == dists[i-1] && order[i] < order[i-1] {
			t.Fatalf("tie at distance %v visited out of index order: %d after %d", dists[i], order[i], order[i-1])
		}
	}
	seen := 0
	ScanBuckets(g, 5, func(v int, d float64) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("early stop visited %d nodes, want 10", seen)
	}
}

// A pooled Scanner must interleave bucketed and heap sweeps without
// cross-contamination (the epoch stamping shares dist/stamp/done arrays).
func TestScanBucketsInterleavesWithHeapScans(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := randomBucketable(rng, 100, 150, false)
	sc := NewScanner(g)
	ref := make([]float64, g.N())
	got := make([]float64, g.N())
	for trial := 0; trial < 10; trial++ {
		src := rng.Intn(g.N())
		sc.RowInto(src, ref)
		sc.RowBucketsInto(src, got)
		for v := range ref {
			if math.Float64bits(ref[v]) != math.Float64bits(got[v]) {
				t.Fatalf("interleaved sweep %d: d(%d,%d) = %v, want %v", trial, src, v, got[v], ref[v])
			}
		}
		// A truncated heap scan in between leaves partial epoch state.
		sc.Scan(src, func(v int, d float64) bool { return v%3 != 1 })
	}
}
