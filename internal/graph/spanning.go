package graph

import "sort"

// UnionFind is a disjoint-set forest with union by rank and path compression.
type UnionFind struct {
	parent []int
	rank   []byte
	sets   int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]byte, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether they were distinct.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// MSTKruskal returns a minimum spanning tree (forest, if disconnected) as an
// edge list, together with its total weight.
func (g *Graph) MSTKruskal() ([]Edge, float64) {
	es := g.SortedEdges()
	uf := NewUnionFind(g.n)
	var tree []Edge
	total := 0.0
	for _, e := range es {
		if uf.Union(e.U, e.V) {
			tree = append(tree, e)
			total += e.W
			if len(tree) == g.n-1 {
				break
			}
		}
	}
	return tree, total
}

// MSTPrim returns a minimum spanning tree rooted at node 0 using a lazy
// binary-heap Prim's algorithm, as an edge list with its total weight.
// For disconnected graphs it spans only the component of node 0.
func (g *Graph) MSTPrim() ([]Edge, float64) {
	if g.n == 0 {
		return nil, 0
	}
	type cand struct {
		w    float64
		u, v int
	}
	inTree := make([]bool, g.n)
	var tree []Edge
	total := 0.0
	adj := g.csr()
	// Simple pair-heap via sort-free sift; reuse pq with encoded edges would
	// be uglier, so keep a local heap of candidates.
	h := candHeap{}
	add := func(v int) {
		inTree[v] = true
		for i, end := adj.off[v], adj.off[v+1]; i < end; i++ {
			if to := int(adj.to[i]); !inTree[to] {
				h.push(cand{w: adj.w[i], u: v, v: to})
			}
		}
	}
	add(0)
	for len(h) > 0 {
		c := h.pop()
		if inTree[c.v] {
			continue
		}
		tree = append(tree, Edge{U: c.u, V: c.v, W: c.w})
		total += c.w
		add(c.v)
	}
	return tree, total
}

type candHeap []struct {
	w    float64
	u, v int
}

func (h *candHeap) push(c struct {
	w    float64
	u, v int
}) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].w <= (*h)[i].w {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *candHeap) pop() struct {
	w    float64
	u, v int
} {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && (*h)[l].w < (*h)[s].w {
			s = l
		}
		if r < n && (*h)[r].w < (*h)[s].w {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// MetricMST computes the weight of a minimum spanning tree over the point
// set `points` under the dense metric `dist` (dist[i][j] indexed by node
// ids). This is the paper's multicast-tree cost for updating all copies: a
// minimum spanning tree in the metric closure connecting the copy set.
// Runs Prim in O(k^2) for k = len(points). Returns 0 for k <= 1.
func MetricMST(dist [][]float64, points []int) float64 {
	k := len(points)
	if k <= 1 {
		return 0
	}
	const unreached = -1
	inTree := make([]bool, k)
	best := make([]float64, k)
	for i := range best {
		best[i] = Inf
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = dist[points[0]][points[j]]
	}
	total := 0.0
	for it := 1; it < k; it++ {
		sel := unreached
		for j := 0; j < k; j++ {
			if !inTree[j] && (sel == unreached || best[j] < best[sel]) {
				sel = j
			}
		}
		total += best[sel]
		inTree[sel] = true
		for j := 0; j < k; j++ {
			if !inTree[j] {
				if d := dist[points[sel]][points[j]]; d < best[j] {
					best[j] = d
				}
			}
		}
	}
	return total
}

// MetricMSTTree returns the edges (as index pairs into points) of a minimum
// spanning tree over points under the dense metric dist, plus total weight.
func MetricMSTTree(dist [][]float64, points []int) ([][2]int, float64) {
	k := len(points)
	if k <= 1 {
		return nil, 0
	}
	inTree := make([]bool, k)
	best := make([]float64, k)
	from := make([]int, k)
	for i := range best {
		best[i] = Inf
		from[i] = -1
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = dist[points[0]][points[j]]
		from[j] = 0
	}
	var edges [][2]int
	total := 0.0
	for it := 1; it < k; it++ {
		sel := -1
		for j := 0; j < k; j++ {
			if !inTree[j] && (sel == -1 || best[j] < best[sel]) {
				sel = j
			}
		}
		edges = append(edges, [2]int{from[sel], sel})
		total += best[sel]
		inTree[sel] = true
		for j := 0; j < k; j++ {
			if !inTree[j] {
				if d := dist[points[sel]][points[j]]; d < best[j] {
					best[j] = d
					from[j] = sel
				}
			}
		}
	}
	return edges, total
}

// TreeParents roots a tree graph at root and returns for each node its
// parent (-1 for root), the weight of the edge to the parent, and a
// topological order (parents before children). Panics if g is not a tree.
func (g *Graph) TreeParents(root int) (parent []int, pw []float64, order []int) {
	if !g.IsTree() {
		panic("graph: TreeParents on non-tree")
	}
	parent = make([]int, g.n)
	pw = make([]float64, g.n)
	order = make([]int, 0, g.n)
	seen := make([]bool, g.n)
	stack := []int{root}
	seen[root] = true
	parent[root] = -1
	c := g.csr()
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			if u := int(c.to[i]); !seen[u] {
				seen[u] = true
				parent[u] = v
				pw[u] = c.w[i]
				stack = append(stack, u)
			}
		}
	}
	return parent, pw, order
}

// SubtreeSteiner returns the total edge weight of the minimal subtree of the
// tree g spanning the terminal set. On a tree the minimal Steiner tree is
// unique: the union of pairwise paths. Computed by pruning leaves that are
// not terminals. Returns 0 when len(terminals) <= 1.
func (g *Graph) SubtreeSteiner(terminals []int) float64 {
	if !g.IsTree() {
		panic("graph: SubtreeSteiner on non-tree")
	}
	if len(terminals) <= 1 {
		return 0
	}
	isTerm := make([]bool, g.n)
	for _, t := range terminals {
		isTerm[t] = true
	}
	// Root the tree at a terminal. An edge (v, parent(v)) is in the minimal
	// Steiner subtree iff v's subtree contains a terminal: the root is a
	// terminal, so there is always a terminal on the other side.
	parent, pw, order := g.TreeParents(terminals[0])
	needed := make([]bool, g.n)
	copy(needed, isTerm)
	total := 0.0
	for i := len(order) - 1; i >= 1; i-- { // children before parents
		v := order[i]
		if needed[v] {
			needed[parent[v]] = true
			total += pw[v]
		}
	}
	return total
}

// Leaves returns the nodes of degree <= 1 in ascending order.
func (g *Graph) Leaves() []int {
	var out []int
	c := g.csr()
	for v := 0; v < g.n; v++ {
		if c.off[v+1]-c.off[v] <= 1 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
