package graph

// Scanner runs truncated Dijkstra sweeps from varying sources, reusing its
// internal arrays across calls so that a sweep over a small ball costs only
// the ball, not O(n) re-initialisation. It is the engine behind the lazy
// distance oracle's nearest-first iteration: radius machinery and
// facility-location ball scans stop after a handful of nodes, so a full
// per-source shortest-path run (let alone an all-pairs matrix) is wasted
// work on large networks.
//
// Beyond truncated scans it also provides the allocation-free forms of the
// other sweep kernels — full rows (RowInto), multi-source nearest fields
// (ScanFrom, NearestInto), pruned nearest-field improvement
// (ImproveNearest) and potential-seeded relaxation (Relax) — so a pooled
// Scanner is the one reusable workspace behind every Dijkstra-shaped
// operation in the repository.
//
// A Scanner is not safe for concurrent use; pool Scanners per goroutine.
// Many Scanners over one graph may run concurrently: they share the
// graph's immutable CSR adjacency and keep all mutable state private.
type Scanner struct {
	g     *Graph
	c     *csrAdj // compacted adjacency, refreshed per sweep when stale
	dist  []float64
	stamp []int // epoch in which dist/done were last written
	done  []int
	epoch int
	q     pq

	// Scratch of the bucketed SSSP kernel (ScanBuckets): the cyclic
	// bucket array, the per-bucket drain copy, the settled-node list
	// sorted before emission, and the pre-bound (distance, index)
	// comparator (built once; a literal at the sort site would be boxed
	// per bucket).
	bq   [][]int32
	bcur []int32
	bset []int32
	bcmp func(a, b int32) int
}

// NewScanner returns a Scanner over g.
func NewScanner(g *Graph) *Scanner {
	return &Scanner{
		g:     g,
		c:     g.csr(),
		dist:  make([]float64, g.n),
		stamp: make([]int, g.n),
		done:  make([]int, g.n),
	}
}

// adj returns the graph's CSR adjacency, re-fetching it when edges were
// added since this Scanner last looked. One comparison on the hot path.
func (s *Scanner) adj() *csrAdj {
	if s.c.m != len(s.g.edges) {
		s.c = s.g.csr()
	}
	return s.c
}

// Scan visits nodes in nondecreasing shortest-path distance from src,
// calling fn(v, d) for each settled node (starting with fn(src, 0)). The
// sweep stops early when fn returns false; only the explored ball is paid
// for. Unreachable nodes are never visited.
func (s *Scanner) Scan(src int, fn func(v int, d float64) bool) {
	s.epoch++
	e := s.epoch
	s.dist[src] = 0
	s.stamp[src] = e
	s.q = append(s.q[:0], pqItem{node: src, dist: 0})
	s.run(e, fn)
}

// ScanFrom visits nodes in nondecreasing distance from the nearest member
// of sources, calling fn(v, d) for each settled node. Duplicate sources are
// harmless. An empty source set visits nothing.
func (s *Scanner) ScanFrom(sources []int, fn func(v int, d float64) bool) {
	s.epoch++
	e := s.epoch
	s.q = s.q[:0]
	for _, src := range sources {
		if s.stamp[src] == e {
			continue
		}
		s.dist[src] = 0
		s.stamp[src] = e
		s.q.push(pqItem{node: src, dist: 0})
	}
	s.run(e, fn)
}

// run drains the queue seeded by Scan or ScanFrom for epoch e.
func (s *Scanner) run(e int, fn func(v int, d float64) bool) {
	c := s.adj()
	for len(s.q) > 0 {
		it := s.q.pop()
		v := it.node
		if s.done[v] == e {
			continue
		}
		s.done[v] = e
		if !fn(v, it.dist) {
			return
		}
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			to := int(c.to[i])
			nd := it.dist + c.w[i]
			if s.stamp[to] != e || nd < s.dist[to] {
				s.dist[to] = nd
				s.stamp[to] = e
				s.q.push(pqItem{node: to, dist: nd})
			}
		}
	}
}

// RowInto fills row (length n) with single-source shortest-path distances
// from src — Inf for unreachable nodes — and returns it. Unlike
// Graph.Dijkstra it allocates nothing: heap and bookkeeping live in the
// Scanner, and the caller owns the row.
func (s *Scanner) RowInto(src int, row []float64) []float64 {
	if len(row) != s.g.n {
		panic("graph: RowInto length mismatch")
	}
	for i := range row {
		row[i] = Inf
	}
	s.Scan(src, func(v int, d float64) bool {
		row[v] = d
		return true
	})
	return row
}

// NearestInto fills near (length n) with each node's distance to the
// nearest member of sources — Inf where no source is reachable — and
// returns it. One multi-source sweep, no allocation.
func (s *Scanner) NearestInto(sources []int, near []float64) []float64 {
	if len(near) != s.g.n {
		panic("graph: NearestInto length mismatch")
	}
	for i := range near {
		near[i] = Inf
	}
	s.ScanFrom(sources, func(v int, d float64) bool {
		near[v] = d
		return true
	})
	return near
}

// ImproveNearest merges the distances from src into near: afterwards
// near[v] = min(near[v], d(src, v)). It explores only the region that src
// actually improves (src's Voronoi cell with respect to the sources already
// folded into near), which makes incrementally adding one source to a
// nearest-source field far cheaper than a fresh multi-source run. Pruning
// is exact: a path through a node it did not improve cannot improve any
// node beyond it, by the triangle inequality.
func (s *Scanner) ImproveNearest(src int, near []float64) {
	if len(near) != s.g.n {
		panic("graph: ImproveNearest length mismatch")
	}
	if near[src] <= 0 {
		return
	}
	c := s.adj()
	s.epoch++
	e := s.epoch
	s.dist[src] = 0
	s.stamp[src] = e
	s.q = append(s.q[:0], pqItem{node: src, dist: 0})
	for len(s.q) > 0 {
		it := s.q.pop()
		v := it.node
		if s.stamp[v] != e || it.dist > s.dist[v] {
			continue
		}
		if it.dist < near[v] {
			near[v] = it.dist
		}
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			to := int(c.to[i])
			nd := it.dist + c.w[i]
			if nd >= near[to] {
				continue
			}
			if s.stamp[to] == e && nd >= s.dist[to] {
				continue
			}
			s.dist[to] = nd
			s.stamp[to] = e
			s.q.push(pqItem{node: to, dist: nd})
		}
	}
}

// Relax replaces vals in place with, for every node v,
// min_u (vals[u] + d(u, v)) — a multi-source Dijkstra whose sources carry
// initial potentials; entries of +Inf are non-sources. This is the
// allocation-free form of Graph.Relax for callers that can reuse a Scanner
// (the Steiner dynamic program calls it once per terminal subset).
func (s *Scanner) Relax(vals []float64) {
	if len(vals) != s.g.n {
		panic("graph: Relax length mismatch")
	}
	c := s.adj()
	s.q = s.q[:0]
	for v, d := range vals {
		if d < Inf {
			s.q.push(pqItem{node: v, dist: d})
		}
	}
	for len(s.q) > 0 {
		it := s.q.pop()
		v := it.node
		if it.dist > vals[v] {
			continue
		}
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			if to := int(c.to[i]); it.dist+c.w[i] < vals[to] {
				vals[to] = it.dist + c.w[i]
				s.q.push(pqItem{node: to, dist: it.dist + c.w[i]})
			}
		}
	}
}

// ImproveNearest merges the distances from src into near, exploring only
// the improved region. Allocation-conscious repeated callers should hold
// a Scanner and use its method of the same name; this one-shot form keeps
// its scratch in a map sized to the improved region, so a call that
// improves a 10-node pocket of a 50k-node graph does not allocate O(n)
// scanner arrays.
func (g *Graph) ImproveNearest(src int, near []float64) {
	if len(near) != g.n {
		panic("graph: ImproveNearest length mismatch")
	}
	if near[src] <= 0 {
		return
	}
	c := g.csr()
	dist := make(map[int]float64, 16)
	q := pq{{node: src, dist: 0}}
	dist[src] = 0
	for len(q) > 0 {
		it := q.pop()
		v := it.node
		if d, ok := dist[v]; !ok || it.dist > d {
			continue
		}
		if it.dist < near[v] {
			near[v] = it.dist
		}
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			to := int(c.to[i])
			nd := it.dist + c.w[i]
			if nd >= near[to] {
				continue
			}
			if d, ok := dist[to]; ok && nd >= d {
				continue
			}
			dist[to] = nd
			q.push(pqItem{node: to, dist: nd})
		}
	}
}

// Relax computes, for every node v, min_u (init[u] + d(u, v)) — a
// multi-source Dijkstra whose sources carry initial potentials. init entries
// of +Inf are non-sources. The input slice is not modified. This is the
// graph-native form of the dense-matrix relaxation pass
// row[v] = min_u (row[u] + dist[u][v]) used by Steiner dynamic programs, and
// lets them run without an all-pairs matrix.
func (g *Graph) Relax(init []float64) []float64 {
	if len(init) != g.n {
		panic("graph: Relax length mismatch")
	}
	out := make([]float64, g.n)
	copy(out, init)
	NewScanner(g).Relax(out)
	return out
}
