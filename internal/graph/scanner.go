package graph

import "container/heap"

// Scanner runs truncated Dijkstra sweeps from varying sources, reusing its
// internal arrays across calls so that a sweep over a small ball costs only
// the ball, not O(n) re-initialisation. It is the engine behind the lazy
// distance oracle's nearest-first iteration: radius machinery and
// facility-location ball scans stop after a handful of nodes, so a full
// per-source shortest-path run (let alone an all-pairs matrix) is wasted
// work on large networks.
//
// A Scanner is not safe for concurrent use; pool Scanners per goroutine.
type Scanner struct {
	g     *Graph
	dist  []float64
	stamp []int // epoch in which dist/done were last written
	done  []int
	epoch int
	q     pq
}

// NewScanner returns a Scanner over g.
func NewScanner(g *Graph) *Scanner {
	return &Scanner{
		g:     g,
		dist:  make([]float64, g.n),
		stamp: make([]int, g.n),
		done:  make([]int, g.n),
	}
}

// Scan visits nodes in nondecreasing shortest-path distance from src,
// calling fn(v, d) for each settled node (starting with fn(src, 0)). The
// sweep stops early when fn returns false; only the explored ball is paid
// for. Unreachable nodes are never visited.
func (s *Scanner) Scan(src int, fn func(v int, d float64) bool) {
	s.epoch++
	e := s.epoch
	s.dist[src] = 0
	s.stamp[src] = e
	s.q = append(s.q[:0], pqItem{node: src, dist: 0})
	for len(s.q) > 0 {
		it := heap.Pop(&s.q).(pqItem)
		v := it.node
		if s.done[v] == e {
			continue
		}
		s.done[v] = e
		if !fn(v, it.dist) {
			return
		}
		for _, h := range s.g.adj[v] {
			nd := it.dist + h.w
			if s.stamp[h.to] != e || nd < s.dist[h.to] {
				s.dist[h.to] = nd
				s.stamp[h.to] = e
				heap.Push(&s.q, pqItem{node: h.to, dist: nd})
			}
		}
	}
}

// ImproveNearest merges the distances from src into near: afterwards
// near[v] = min(near[v], d(src, v)). It explores only the region that src
// actually improves (src's Voronoi cell with respect to the sources already
// folded into near), which makes incrementally adding one source to a
// nearest-source field far cheaper than a fresh multi-source run. Pruning
// is exact: a path through a node it did not improve cannot improve any
// node beyond it, by the triangle inequality.
func (g *Graph) ImproveNearest(src int, near []float64) {
	if len(near) != g.n {
		panic("graph: ImproveNearest length mismatch")
	}
	if near[src] <= 0 {
		return
	}
	dist := make(map[int]float64, 16)
	q := pq{{node: src, dist: 0}}
	dist[src] = 0
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		v := it.node
		if d, ok := dist[v]; !ok || it.dist > d {
			continue
		}
		if it.dist < near[v] {
			near[v] = it.dist
		}
		for _, h := range g.adj[v] {
			nd := it.dist + h.w
			if nd >= near[h.to] {
				continue
			}
			if d, ok := dist[h.to]; ok && nd >= d {
				continue
			}
			dist[h.to] = nd
			heap.Push(&q, pqItem{node: h.to, dist: nd})
		}
	}
}

// Relax computes, for every node v, min_u (init[u] + d(u, v)) — a
// multi-source Dijkstra whose sources carry initial potentials. init entries
// of +Inf are non-sources. The input slice is not modified. This is the
// graph-native form of the dense-matrix relaxation pass
// row[v] = min_u (row[u] + dist[u][v]) used by Steiner dynamic programs, and
// lets them run without an all-pairs matrix.
func (g *Graph) Relax(init []float64) []float64 {
	if len(init) != g.n {
		panic("graph: Relax length mismatch")
	}
	out := make([]float64, g.n)
	copy(out, init)
	q := pq{}
	for v, d := range out {
		if d < Inf {
			heap.Push(&q, pqItem{node: v, dist: d})
		}
	}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		v := it.node
		if it.dist > out[v] {
			continue
		}
		for _, h := range g.adj[v] {
			if nd := it.dist + h.w; nd < out[h.to] {
				out[h.to] = nd
				heap.Push(&q, pqItem{node: h.to, dist: nd})
			}
		}
	}
	return out
}
