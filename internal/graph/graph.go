// Package graph provides the weighted undirected graph substrate used by all
// data-management algorithms in this repository: adjacency representation,
// shortest paths, spanning trees, and structural queries.
//
// Edge weights are the paper's transmission costs ct(e); they must be
// non-negative. Nodes are dense integers 0..N-1 so that algorithms can use
// slices instead of maps on hot paths.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected edge between nodes U and V with transmission cost W.
type Edge struct {
	U, V int
	W    float64
}

// halfEdge is one direction of an Edge, stored in adjacency lists.
type halfEdge struct {
	to int
	w  float64
	id int // index into Graph.edges
}

// Graph is a weighted undirected graph with a fixed node count.
// The zero value is not usable; construct with New.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]halfEdge
}

// New returns an empty graph on n nodes (0..n-1).
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]halfEdge, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge inserts an undirected edge {u, v} with cost w and returns its id.
// Self loops and negative weights are rejected.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self loop at node %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], halfEdge{to: v, w: w, id: id})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, w: w, id: id})
	return id
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum node degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// Neighbors calls fn for every edge incident to v, passing the neighbor and
// the edge weight. Iteration order is insertion order.
func (g *Graph) Neighbors(v int, fn func(u int, w float64)) {
	for _, h := range g.adj[v] {
		fn(h.to, h.w)
	}
}

// NeighborList returns the neighbors of v with edge weights as a fresh slice.
func (g *Graph) NeighborList(v int) []Edge {
	out := make([]Edge, 0, len(g.adj[v]))
	for _, h := range g.adj[v] {
		out = append(out, Edge{U: v, V: h.to, W: h.w})
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.AddEdge(e.U, e.V, e.W)
	}
	return c
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[v] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, h.to)
			}
		}
	}
	return count == g.n
}

// IsTree reports whether the graph is a tree (connected, n-1 edges).
func (g *Graph) IsTree() bool {
	return g.n >= 1 && len(g.edges) == g.n-1 && g.Connected()
}

// UnweightedDiameter returns the maximum number of edges on any shortest
// (hop-count) path between two nodes, i.e. diam(T) in the paper's notation.
// It returns 0 for graphs with fewer than two nodes and -1 if disconnected.
func (g *Graph) UnweightedDiameter() int {
	if g.n <= 1 {
		return 0
	}
	diam := 0
	dist := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range g.adj[v] {
				if dist[h.to] < 0 {
					dist[h.to] = dist[v] + 1
					queue = append(queue, h.to)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// SortedEdges returns the edges sorted by ascending weight (ties by id),
// without modifying the graph.
func (g *Graph) SortedEdges() []Edge {
	es := make([]Edge, len(g.edges))
	copy(es, g.edges)
	sort.SliceStable(es, func(i, j int) bool { return es[i].W < es[j].W })
	return es
}
