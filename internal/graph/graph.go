// Package graph provides the weighted undirected graph substrate used by all
// data-management algorithms in this repository: adjacency representation,
// shortest paths, spanning trees, and structural queries.
//
// Edge weights are the paper's transmission costs ct(e); they must be
// non-negative. Nodes are dense integers 0..N-1 so that algorithms can use
// slices instead of maps on hot paths.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Edge is an undirected edge between nodes U and V with transmission cost W.
type Edge struct {
	U, V int
	W    float64
}

// csrAdj is the compacted adjacency of a graph in CSR (compressed sparse
// row) form: node v's neighbors live at indices off[v]..off[v+1] of the
// flat to/w arrays, in edge-insertion order per node. The flat layout
// replaces the historical [][]halfEdge adjacency — one slice header and
// one allocation per node, neighbors scattered across the heap — with
// three contiguous arrays, so a Dijkstra sweep walks memory linearly and
// the per-half-edge footprint drops from 24 bytes (padded struct) to 12.
// m records the edge count at build time: the layout is immutable and a
// later AddEdge simply makes it stale (see Graph.csr).
type csrAdj struct {
	m   int
	off []int32   // n+1 offsets into to/w
	to  []int32   // 2m neighbor ids
	w   []float64 // 2m edge weights, aligned with to

	// wmin/wmax summarise the edge-weight profile at build time: wmin is
	// the smallest positive weight (+Inf when none), wmax the largest.
	// The bucketed SSSP kernel reads them to pick its bucket width and to
	// decide whether bucketing is profitable at all (see canBucket).
	wmin, wmax float64
}

// Graph is a weighted undirected graph with a fixed node count.
// The zero value is not usable; construct with New.
//
// Adjacency is served in CSR form, built lazily on first traversal and
// rebuilt transparently if edges were added since (AddEdge only appends
// to the edge list). Concurrent traversals are safe once construction is
// done; mutating the graph concurrently with traversals is not.
type Graph struct {
	n     int
	edges []Edge

	adjMu    sync.Mutex
	adjCache atomic.Pointer[csrAdj]
}

// New returns an empty graph on n nodes (0..n-1).
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n}
}

// maxCSR bounds node and half-edge counts to what int32 CSR indices can
// address; a graph beyond it would need >16 GiB of adjacency anyway.
const maxCSR = 1<<31 - 2

// csr returns the graph's compacted adjacency, building it on first use
// and rebuilding it when edges were added since the last build. The
// returned layout is immutable; lock-free on the steady-state path.
func (g *Graph) csr() *csrAdj {
	if c := g.adjCache.Load(); c != nil && c.m == len(g.edges) {
		return c
	}
	g.adjMu.Lock()
	defer g.adjMu.Unlock()
	if c := g.adjCache.Load(); c != nil && c.m == len(g.edges) {
		return c
	}
	if g.n > maxCSR || len(g.edges) > maxCSR/2 {
		panic("graph: graph too large for CSR adjacency")
	}
	c := &csrAdj{
		m:    len(g.edges),
		off:  make([]int32, g.n+1),
		to:   make([]int32, 2*len(g.edges)),
		w:    make([]float64, 2*len(g.edges)),
		wmin: math.Inf(1),
	}
	for _, e := range g.edges {
		c.off[e.U+1]++
		c.off[e.V+1]++
		if e.W > 0 && e.W < c.wmin {
			c.wmin = e.W
		}
		if e.W > c.wmax {
			c.wmax = e.W
		}
	}
	for v := 0; v < g.n; v++ {
		c.off[v+1] += c.off[v]
	}
	// Fill with a moving per-node cursor; iterating edges in insertion
	// order keeps each node's neighbor order identical to the historical
	// adjacency lists, so every tie-break downstream is unchanged.
	cursor := make([]int32, g.n)
	copy(cursor, c.off[:g.n])
	for _, e := range g.edges {
		i := cursor[e.U]
		c.to[i], c.w[i] = int32(e.V), e.W
		cursor[e.U]++
		j := cursor[e.V]
		c.to[j], c.w[j] = int32(e.U), e.W
		cursor[e.V]++
	}
	g.adjCache.Store(c)
	return c
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge inserts an undirected edge {u, v} with cost w and returns its id.
// Self loops and negative weights are rejected.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self loop at node %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	return id
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int {
	c := g.csr()
	return int(c.off[v+1] - c.off[v])
}

// MaxDegree returns the maximum node degree, 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	c := g.csr()
	max := int32(0)
	for v := 0; v < g.n; v++ {
		if d := c.off[v+1] - c.off[v]; d > max {
			max = d
		}
	}
	return int(max)
}

// Neighbors calls fn for every edge incident to v, passing the neighbor and
// the edge weight. Iteration order is insertion order.
func (g *Graph) Neighbors(v int, fn func(u int, w float64)) {
	c := g.csr()
	for i, end := c.off[v], c.off[v+1]; i < end; i++ {
		fn(int(c.to[i]), c.w[i])
	}
}

// NeighborList returns the neighbors of v with edge weights as a fresh slice.
func (g *Graph) NeighborList(v int) []Edge {
	c := g.csr()
	out := make([]Edge, 0, c.off[v+1]-c.off[v])
	for i, end := c.off[v], c.off[v+1]; i < end; i++ {
		out = append(out, Edge{U: v, V: int(c.to[i]), W: c.w[i]})
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.AddEdge(e.U, e.V, e.W)
	}
	return c
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	c := g.csr()
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			if u := int(c.to[i]); !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.n
}

// IsTree reports whether the graph is a tree (connected, n-1 edges).
func (g *Graph) IsTree() bool {
	return g.n >= 1 && len(g.edges) == g.n-1 && g.Connected()
}

// UnweightedDiameter returns the maximum number of edges on any shortest
// (hop-count) path between two nodes, i.e. diam(T) in the paper's notation.
// It returns 0 for graphs with fewer than two nodes and -1 if disconnected.
func (g *Graph) UnweightedDiameter() int {
	if g.n <= 1 {
		return 0
	}
	c := g.csr()
	diam := 0
	dist := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for i, end := c.off[v], c.off[v+1]; i < end; i++ {
				if u := int(c.to[i]); dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// SortedEdges returns the edges sorted by ascending weight (ties by id),
// without modifying the graph.
func (g *Graph) SortedEdges() []Edge {
	es := make([]Edge, len(g.edges))
	copy(es, g.edges)
	sort.SliceStable(es, func(i, j int) bool { return es[i].W < es[j].W })
	return es
}
