package graph

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Inf is the distance reported for unreachable nodes.
var Inf = math.Inf(1)

// pqItem is a node with a tentative distance in the Dijkstra priority queue.
type pqItem struct {
	node int
	dist float64
}

// pq is a binary min-heap over tentative distances, driven through the
// concrete push/pop methods below instead of container/heap: the interface
// API boxes every pqItem into its own heap allocation, which used to
// dominate the allocation profile of large sweeps (one 16-byte allocation
// per edge relaxation). Stale entries are allowed and skipped on pop (lazy
// deletion), which is simpler and in practice as fast as decrease-key for
// the sparse graphs used here.
type pq []pqItem

// push inserts an item, sifting it up to its heap position.
func (q *pq) push(it pqItem) {
	s := append(*q, it)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].dist <= s[i].dist {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
	*q = s
}

// pop removes and returns the minimum item. The queue must be non-empty.
func (q *pq) pop() pqItem {
	s := *q
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].dist < s[l].dist {
			m = r
		}
		if s[i].dist <= s[m].dist {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*q = s
	return top
}

// Dijkstra computes single-source shortest path distances from src and the
// predecessor of every node on its shortest path tree (-1 for src and
// unreachable nodes). Distances to unreachable nodes are Inf.
func (g *Graph) Dijkstra(src int) (dist []float64, parent []int) {
	dist = make([]float64, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	q := pq{{node: src, dist: 0}}
	done := make([]bool, g.n)
	c := g.csr()
	for len(q) > 0 {
		it := q.pop()
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			if to := int(c.to[i]); dist[v]+c.w[i] < dist[to] {
				dist[to] = dist[v] + c.w[i]
				parent[to] = v
				q.push(pqItem{node: to, dist: dist[to]})
			}
		}
	}
	return dist, parent
}

// DijkstraFrom computes shortest path distances from a set of sources
// (a "multi-source" Dijkstra). dist[v] is the distance from v to the nearest
// source; src[v] identifies that source (-1 if unreachable).
// It is used to find the nearest copy of an object for every node at once.
func (g *Graph) DijkstraFrom(sources []int) (dist []float64, src []int) {
	dist = make([]float64, g.n)
	src = make([]int, g.n)
	for i := range dist {
		dist[i] = Inf
		src[i] = -1
	}
	q := pq{}
	for _, s := range sources {
		if dist[s] > 0 {
			dist[s] = 0
			src[s] = s
			q.push(pqItem{node: s, dist: 0})
		}
	}
	done := make([]bool, g.n)
	c := g.csr()
	for len(q) > 0 {
		it := q.pop()
		v := it.node
		if done[v] {
			continue
		}
		done[v] = true
		for i, end := c.off[v], c.off[v+1]; i < end; i++ {
			if to := int(c.to[i]); dist[v]+c.w[i] < dist[to] {
				dist[to] = dist[v] + c.w[i]
				src[to] = src[v]
				q.push(pqItem{node: to, dist: dist[to]})
			}
		}
	}
	return dist, src
}

// AllPairs computes the full shortest-path distance matrix by running
// Dijkstra from every node: O(n (m + n) log n). For the dense metric view
// used by the placement algorithms this is both the distance function ct and
// the metric closure of the graph.
func (g *Graph) AllPairs() [][]float64 {
	d := make([][]float64, g.n)
	for v := 0; v < g.n; v++ {
		dv, _ := g.Dijkstra(v)
		d[v] = dv
	}
	return d
}

// AllPairsParallel is AllPairs with the per-source Dijkstra runs fanned out
// over a bounded worker pool. Rows are independent, so the result is
// bit-identical to AllPairs. workers <= 0 selects GOMAXPROCS.
func (g *Graph) AllPairsParallel(workers int) [][]float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.n {
		workers = g.n
	}
	if workers <= 1 {
		return g.AllPairs()
	}
	d := make([][]float64, g.n)
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				v := int(atomic.AddInt64(&next, 1))
				if v >= g.n {
					return
				}
				dv, _ := g.Dijkstra(v)
				d[v] = dv
			}
		}()
	}
	wg.Wait()
	return d
}

// PathTo reconstructs the node sequence from src to dst using a parent array
// produced by Dijkstra(src). It returns nil if dst is unreachable.
func PathTo(parent []int, src, dst int) []int {
	if src == dst {
		return []int{src}
	}
	if parent[dst] < 0 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Eccentricity returns the maximum shortest-path distance from v to any node.
func (g *Graph) Eccentricity(v int) float64 {
	dist, _ := g.Dijkstra(v)
	max := 0.0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}

// WeightedDiameter returns the maximum over nodes of Eccentricity, i.e. the
// largest shortest-path distance in the graph.
func (g *Graph) WeightedDiameter() float64 {
	max := 0.0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > max {
			max = e
		}
	}
	return max
}
