package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConnected builds a random connected graph: a random tree plus extra
// random edges.
func randomConnected(rng *rand.Rand, n, extra int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for k := 0; k < extra; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	return g
}

// floydWarshall is the reference all-pairs implementation for tests.
func floydWarshall(g *Graph) [][]float64 {
	n := g.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.W < d[e.U][e.V] {
			d[e.U][e.V] = e.W
			d[e.V][e.U] = e.W
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := randomConnected(rng, n, rng.Intn(2*n))
		want := floydWarshall(g)
		got := g.AllPairs()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got[i][j]-want[i][j]) > 1e-9 {
					t.Fatalf("seed %d: dist[%d][%d] = %v, want %v", seed, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestDijkstraPathReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomConnected(rng, 25, 30)
	dist, parent := g.Dijkstra(0)
	for v := 0; v < g.N(); v++ {
		path := PathTo(parent, 0, v)
		if path == nil {
			t.Fatalf("no path to %v", v)
		}
		if path[0] != 0 || path[len(path)-1] != v {
			t.Fatalf("path endpoints %v for target %d", path, v)
		}
		// sum edge weights along path, taking cheapest parallel edge
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			w := math.Inf(1)
			g.Neighbors(path[i], func(u int, ew float64) {
				if u == path[i+1] && ew < w {
					w = ew
				}
			})
			total += w
		}
		if math.Abs(total-dist[v]) > 1e-9 {
			t.Fatalf("path to %d sums to %v, dist %v", v, total, dist[v])
		}
	}
}

func TestDijkstraFromMultiSource(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		g := randomConnected(rng, n, n)
		k := 1 + rng.Intn(n)
		sources := rng.Perm(n)[:k]
		dist, src := g.DijkstraFrom(sources)
		all := g.AllPairs()
		for v := 0; v < n; v++ {
			want := math.Inf(1)
			for _, s := range sources {
				want = math.Min(want, all[v][s])
			}
			if math.Abs(dist[v]-want) > 1e-9 {
				t.Fatalf("seed %d: multi-source dist[%d] = %v, want %v", seed, v, dist[v], want)
			}
			if all[v][src[v]] > dist[v]+1e-9 {
				t.Fatalf("seed %d: reported source %d is not at distance %v", seed, src[v], dist[v])
			}
		}
	}
}

func TestMSTPrimEqualsKruskal(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 2+rng.Intn(30), rng.Intn(40))
		tk, wk := g.MSTKruskal()
		tp, wp := g.MSTPrim()
		if len(tk) != g.N()-1 || len(tp) != g.N()-1 {
			t.Fatalf("seed %d: MST edge counts %d / %d, want %d", seed, len(tk), len(tp), g.N()-1)
		}
		if math.Abs(wk-wp) > 1e-9 {
			t.Fatalf("seed %d: Kruskal %v != Prim %v", seed, wk, wp)
		}
	}
}

func TestMetricMSTAgainstKruskalOnCompleteGraph(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := randomConnected(rng, n, n)
		dist := g.AllPairs()
		k := 2 + rng.Intn(n-1)
		pts := rng.Perm(n)[:k]
		got := MetricMST(dist, pts)
		// reference: Kruskal on the complete graph over pts
		kg := New(k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				kg.AddEdge(i, j, dist[pts[i]][pts[j]])
			}
		}
		_, want := kg.MSTKruskal()
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: MetricMST %v, want %v", seed, got, want)
		}
		edges, wTree := MetricMSTTree(dist, pts)
		if math.Abs(wTree-want) > 1e-9 || len(edges) != k-1 {
			t.Fatalf("seed %d: MetricMSTTree weight %v edges %d", seed, wTree, len(edges))
		}
	}
}

func TestSubtreeSteinerEqualsSeparatorDefinition(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*5)
		}
		k := 1 + rng.Intn(n)
		terms := rng.Perm(n)[:k]
		got := g.SubtreeSteiner(terms)
		// Reference: an edge is in the spanning subtree iff removing it
		// separates two terminals.
		want := 0.0
		for idx, e := range g.Edges() {
			// BFS avoiding edge idx from e.U
			side := make([]bool, n)
			stack := []int{e.U}
			side[e.U] = true
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, ne := range g.NeighborList(v) {
					skip := false
					// find if this adjacency corresponds to edge idx
					if (ne.U == e.U && ne.V == e.V) || (ne.U == e.V && ne.V == e.U) {
						skip = true
					}
					if !skip && !side[ne.V] {
						side[ne.V] = true
						stack = append(stack, ne.V)
					}
				}
			}
			hasA, hasB := false, false
			for _, tm := range terms {
				if side[tm] {
					hasA = true
				} else {
					hasB = true
				}
			}
			if hasA && hasB {
				want += g.Edges()[idx].W
			}
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: SubtreeSteiner %v, want %v (terms %v)", seed, got, want, terms)
		}
	}
}

func TestUnionFindProperties(t *testing.T) {
	fn := func(ops []uint8) bool {
		const n = 20
		uf := NewUnionFind(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		find := func(x int) int {
			for naive[x] != x {
				x = naive[x]
			}
			return x
		}
		for k := 0; k+1 < len(ops); k += 2 {
			a, b := int(ops[k])%n, int(ops[k+1])%n
			merged := uf.Union(a, b)
			ra, rb := find(a), find(b)
			if (ra != rb) != merged {
				return false
			}
			naive[ra] = rb
		}
		// equivalence must match
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if (uf.Find(a) == uf.Find(b)) != (find(a) == find(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRecognitionAndDiameter(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	if !g.IsTree() {
		t.Fatal("path is a tree")
	}
	if d := g.UnweightedDiameter(); d != 4 {
		t.Fatalf("diameter %d, want 4", d)
	}
	g.AddEdge(4, 0, 1)
	if g.IsTree() {
		t.Fatal("cycle is not a tree")
	}
	if d := g.UnweightedDiameter(); d != 2 {
		t.Fatalf("cycle diameter %d, want 2", d)
	}
}

func TestConnectedAndClone(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	c := g.Clone()
	c.AddEdge(1, 2, 1)
	if !c.Connected() {
		t.Fatal("patched clone should be connected")
	}
	if g.M() != 2 {
		t.Fatal("clone mutated original")
	}
	if g.UnweightedDiameter() != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
}

func TestTreeParentsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1)
	}
	parent, _, order := g.TreeParents(7)
	if parent[7] != -1 {
		t.Fatal("root parent must be -1")
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < n; v++ {
		if v != 7 && pos[parent[v]] >= pos[v] {
			t.Fatalf("parent %d of %d not before it in order", parent[v], v)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []func(){
		func() { New(3).AddEdge(0, 0, 1) },
		func() { New(3).AddEdge(0, 5, 1) },
		func() { New(3).AddEdge(0, 1, -2) },
		func() { New(3).AddEdge(0, 1, math.NaN()) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEccentricityAndWeightedDiameter(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	if e := g.Eccentricity(1); e != 3 {
		t.Fatalf("ecc(1) = %v", e)
	}
	if d := g.WeightedDiameter(); d != 5 {
		t.Fatalf("weighted diameter %v", d)
	}
}

func TestDegreeStats(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	if g.MaxDegree() != 3 || g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Fatal("degree bookkeeping wrong")
	}
	if g.TotalWeight() != 3 {
		t.Fatal("total weight wrong")
	}
	if lv := g.Leaves(); len(lv) != 3 {
		t.Fatalf("leaves %v", lv)
	}
}
