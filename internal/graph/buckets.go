package graph

import "slices"

// This file implements a delta-stepping-style bucketed SSSP for the large
// sparse networks where the binary-heap Dijkstra in scanner.go becomes the
// bottleneck of row construction: on a bounded-weight-spread graph (unit
// grids, integer-weight meshes) the O(log n) heap churn per relaxation is
// replaced by O(1) appends to a small cyclic bucket array, Dial-style.
//
// The kernel is exact, not approximate: tentative distances are relaxed
// monotonically bucket by bucket, a bucket is re-drained until intra-bucket
// relaxations stop refilling it, and only then are its nodes final. The
// produced distances are byte-identical to the heap kernel's — every
// distance is the same min over the same float64 sums, independent of
// relaxation order — which is property-tested in buckets_test.go. Visit
// order within one bucket is made deterministic by sorting settled nodes on
// (distance, node index) before emission.

// maxBucketSpread caps wmax/wmin for the bucketed kernel: beyond it the
// cyclic bucket array grows past the point where scanning it for the next
// non-empty slot beats a heap. 256 buckets fit comfortably in cache and
// cover every integer-ish weight profile the generators produce.
const maxBucketSpread = 256

// bucketMinNodes is the graph size below which RowAutoInto prefers the
// heap kernel even when the weight profile admits bucketing: on short
// rows the bucket-drain bookkeeping (slot scans, settled-list sorts)
// costs more than the heap churn it saves, and the committed bench
// trajectory shows the bucketed kernel losing on the 2500-node fixtures
// while winning on the 50k grid. Deliberately the same threshold as
// metric.AutoParallelMinNodes: both mark the scale where per-row work
// dwarfs per-row overhead.
const bucketMinNodes = 16384

// canBucket reports whether the weight profile suits the bucketed SSSP:
// at least one edge, a positive minimum weight to derive the bucket width
// from, and a bounded spread. Zero-weight edges are harmless — they relax
// within the current bucket — as long as some positive weight exists.
func (c *csrAdj) canBucket() bool {
	return c.m > 0 && c.wmin > 0 && c.wmax <= c.wmin*maxBucketSpread
}

// ScanBuckets visits nodes in nondecreasing shortest-path distance from
// src, like Scan, but runs the bucketed SSSP kernel when the graph's
// weight profile allows it and falls back to the heap kernel otherwise.
// Nodes at equal distance are visited in ascending node index (the heap
// kernel leaves ties in heap order instead); distances are identical
// either way. The sweep stops early when fn returns false.
func (s *Scanner) ScanBuckets(src int, fn func(v int, d float64) bool) {
	c := s.adj()
	if !c.canBucket() {
		s.Scan(src, fn)
		return
	}
	delta := c.wmin
	// A node settled at distance d only relaxes neighbors to at most
	// d + wmax, so all live tentative distances span < nb buckets and a
	// cyclic array of that many slots never aliases two live buckets.
	nb := int(c.wmax/delta) + 2
	if cap(s.bq) < nb {
		s.bq = make([][]int32, nb)
	}
	s.bq = s.bq[:nb]
	for i := range s.bq {
		s.bq[i] = s.bq[i][:0]
	}
	s.epoch++
	e := s.epoch
	s.dist[src] = 0
	s.stamp[src] = e
	s.bq[0] = append(s.bq[0], int32(src))
	abs := 0 // absolute index of the bucket being drained
	for {
		// Next non-empty bucket in the cyclic window starting at abs.
		found := -1
		for k := 0; k < nb; k++ {
			if len(s.bq[(abs+k)%nb]) > 0 {
				found = abs + k
				break
			}
		}
		if found < 0 {
			return
		}
		abs = found
		slot := abs % nb
		settled := s.bset[:0]
		// Drain until intra-bucket relaxations (edges shorter than delta,
		// or zero-weight) stop refilling the slot. A node is relaxed with
		// its distance at pop time; if a later relaxation in the same
		// bucket improves it, it is re-queued and relaxed again, so its
		// final relaxation always uses its final distance.
		for len(s.bq[slot]) > 0 {
			cur := append(s.bcur[:0], s.bq[slot]...)
			s.bcur = cur
			s.bq[slot] = s.bq[slot][:0]
			for _, v32 := range cur {
				v := int(v32)
				d := s.dist[v]
				if int(d/delta) != abs {
					continue // stale: improved into a later-queued entry's bucket
				}
				if s.done[v] != e {
					s.done[v] = e
					settled = append(settled, v32)
				}
				for i, end := c.off[v], c.off[v+1]; i < end; i++ {
					to := int(c.to[i])
					nd := d + c.w[i]
					if s.stamp[to] != e || nd < s.dist[to] {
						s.dist[to] = nd
						s.stamp[to] = e
						s.bq[int(nd/delta)%nb] = append(s.bq[int(nd/delta)%nb], int32(to))
					}
				}
			}
		}
		// The bucket is final: later buckets can only produce distances
		// >= (abs+1)*delta. Emit in (distance, node index) order. The
		// comparator is pre-bound on the Scanner: sort.Slice's reflection
		// boxing would allocate once per bucket, hundreds of times per
		// sweep.
		if s.bcmp == nil {
			s.bcmp = func(a, b int32) int {
				switch da, db := s.dist[a], s.dist[b]; {
				case da < db:
					return -1
				case da > db:
					return 1
				}
				return int(a - b)
			}
		}
		slices.SortFunc(settled, s.bcmp)
		s.bset = settled
		for _, v32 := range settled {
			if !fn(int(v32), s.dist[v32]) {
				return
			}
		}
		abs++
	}
}

// RowBucketsInto is RowInto with the bucketed SSSP kernel: it fills row
// (length n) with single-source shortest-path distances from src — Inf
// for unreachable nodes — and returns it. Distances are byte-identical
// to RowInto's; only the internal relaxation schedule differs.
func (s *Scanner) RowBucketsInto(src int, row []float64) []float64 {
	if len(row) != s.g.n {
		panic("graph: RowBucketsInto length mismatch")
	}
	for i := range row {
		row[i] = Inf
	}
	s.ScanBuckets(src, func(v int, d float64) bool {
		row[v] = d
		return true
	})
	return row
}

// RowAutoInto fills row with single-source shortest-path distances from
// src, picking the SSSP kernel by graph size and weight profile: the
// bucketed kernel on large bounded-spread graphs (sparse grids past
// bucketMinNodes), the binary-heap Dijkstra otherwise. The produced
// distances are identical either way; this is the row-construction
// kernel behind the lazy oracle's cache fills.
func (s *Scanner) RowAutoInto(src int, row []float64) []float64 {
	if s.g.n >= bucketMinNodes && s.adj().canBucket() {
		return s.RowBucketsInto(src, row)
	}
	return s.RowInto(src, row)
}

// ScanBuckets visits nodes in nondecreasing distance from src with the
// bucketed SSSP kernel (heap fallback on unsuitable weight profiles) —
// the one-shot form of Scanner.ScanBuckets for callers without a pooled
// Scanner.
func ScanBuckets(g *Graph, src int, fn func(v int, d float64) bool) {
	NewScanner(g).ScanBuckets(src, fn)
}
