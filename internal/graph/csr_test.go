package graph

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// The CSR layout must present each node's neighbors in edge-insertion
// order — the order the historical adjacency lists used — so that every
// tie-break downstream of a sweep is unchanged.
func TestCSRNeighborInsertionOrder(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 2)
	g.AddEdge(3, 0, 3)
	g.AddEdge(1, 2, 4)
	var got []Edge
	g.Neighbors(0, func(u int, w float64) { got = append(got, Edge{U: 0, V: u, W: w}) })
	want := []Edge{{0, 2, 1}, {0, 1, 2}, {0, 3, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Neighbors(0) = %v, want insertion order %v", got, want)
	}
	if !reflect.DeepEqual(g.NeighborList(0), want) {
		t.Fatalf("NeighborList(0) = %v, want %v", g.NeighborList(0), want)
	}
}

// Adding an edge after a traversal must invalidate the compacted
// adjacency: the next sweep sees the new edge, including through a
// Scanner built before the mutation.
func TestCSRStaleAfterAddEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	sc := NewScanner(g)
	row := sc.RowInto(0, make([]float64, 3))
	if row[2] != Inf {
		t.Fatalf("node 2 reachable before its edge exists: %v", row[2])
	}
	g.AddEdge(1, 2, 1)
	row = sc.RowInto(0, make([]float64, 3))
	if row[2] != 6 {
		t.Fatalf("stale CSR: d(0,2) = %v after adding edge, want 6", row[2])
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d after adding edge, want 2", g.Degree(1))
	}
}

// Concurrent first traversals must race-safely build one CSR layout and
// agree on results (run with -race).
func TestCSRConcurrentBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnected(rng, 80, 120)
	// Reference distances from a clone, so g itself still has no built
	// CSR when the goroutines below race to build it.
	want, _ := g.Clone().Dijkstra(0)
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _ := g.Dijkstra(0)
			if !reflect.DeepEqual(got, want) {
				t.Error("concurrent Dijkstra over fresh CSR diverged")
			}
		}()
	}
	wg.Wait()
}
