// Package viz renders networks and placements for humans: Graphviz DOT
// export (with copy nodes highlighted and edge fees as labels), ASCII grids
// for mesh topologies, and indented ASCII trees. cmd/placer exposes the DOT
// output behind -dot.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"netplace/internal/graph"
)

// DotOptions tunes the DOT export.
type DotOptions struct {
	// Copies marks nodes to highlight (e.g. a placement's copy set).
	Copies []int
	// NodeLabel overrides node labels; nil uses the node id.
	NodeLabel func(v int) string
	// EdgeLabel overrides edge labels; nil prints the fee with %g.
	EdgeLabel func(e graph.Edge) string
	// Name is the graph name; empty uses "netplace".
	Name string
}

// WriteDot emits an undirected Graphviz graph.
func WriteDot(w io.Writer, g *graph.Graph, opt DotOptions) error {
	name := opt.Name
	if name == "" {
		name = "netplace"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle fontsize=10];\n", name); err != nil {
		return err
	}
	isCopy := make(map[int]bool, len(opt.Copies))
	for _, c := range opt.Copies {
		isCopy[c] = true
	}
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprintf("%d", v)
		if opt.NodeLabel != nil {
			label = opt.NodeLabel(v)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if isCopy[v] {
			attrs += " style=filled fillcolor=gold penwidth=2"
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", v, attrs); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		label := fmt.Sprintf("%g", e.W)
		if opt.EdgeLabel != nil {
			label = opt.EdgeLabel(e)
		}
		if _, err := fmt.Fprintf(w, "  n%d -- n%d [label=%q];\n", e.U, e.V, label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Grid renders a rows x cols mesh as ASCII, marking nodes in marks with
// '#' and others with '.'. Node ids are row-major as produced by gen.Grid.
func Grid(rows, cols int, marks []int) string {
	set := make(map[int]bool, len(marks))
	for _, m := range marks {
		set[m] = true
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			if set[r*cols+c] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Tree renders a tree graph rooted at root as an indented ASCII outline,
// marking copy-holding nodes with a star. Panics if g is not a tree.
func Tree(g *graph.Graph, root int, copies []int) string {
	parent, pw, order := g.TreeParents(root)
	children := make([][]int, g.N())
	for _, v := range order {
		if parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], v)
		}
	}
	for _, ch := range children {
		sort.Ints(ch)
	}
	isCopy := make(map[int]bool, len(copies))
	for _, c := range copies {
		isCopy[c] = true
	}
	var b strings.Builder
	var walk func(v int, prefix string, last bool, edge float64, top bool)
	walk = func(v int, prefix string, last bool, edge float64, top bool) {
		mark := ""
		if isCopy[v] {
			mark = " *"
		}
		if top {
			fmt.Fprintf(&b, "%d%s\n", v, mark)
		} else {
			connector := "├─"
			if last {
				connector = "└─"
			}
			fmt.Fprintf(&b, "%s%s %d (ct %g)%s\n", prefix, connector, v, edge, mark)
		}
		childPrefix := prefix
		if !top {
			if last {
				childPrefix += "   "
			} else {
				childPrefix += "│  "
			}
		}
		for i, c := range children[v] {
			walk(c, childPrefix, i == len(children[v])-1, pw[c], false)
		}
	}
	walk(root, "", true, 0, true)
	return b.String()
}

// PlacementSummary formats a per-object placement listing.
func PlacementSummary(names []string, copies [][]int) string {
	var b strings.Builder
	for i, set := range copies {
		name := fmt.Sprintf("object-%d", i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		fmt.Fprintf(&b, "%-16s %d copies at %v\n", name, len(set), set)
	}
	return b.String()
}
