package viz

import (
	"bytes"
	"strings"
	"testing"

	"netplace/internal/gen"
	"netplace/internal/graph"
)

func TestWriteDotStructure(t *testing.T) {
	g := gen.Path(4, gen.UnitWeights)
	var buf bytes.Buffer
	if err := WriteDot(&buf, g, DotOptions{Copies: []int{2}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph \"netplace\" {",
		"n0 --", "n2 [label=\"2\" style=filled",
		"label=\"1\"", "}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// every node and edge present
	if strings.Count(out, " -- ") != g.M() {
		t.Fatalf("edge count mismatch: %d lines, %d edges", strings.Count(out, " -- "), g.M())
	}
}

func TestWriteDotCustomLabels(t *testing.T) {
	g := gen.Path(3, gen.UnitWeights)
	var buf bytes.Buffer
	err := WriteDot(&buf, g, DotOptions{
		Name:      "custom",
		NodeLabel: func(v int) string { return "N" + string(rune('A'+v)) },
		EdgeLabel: func(e graph.Edge) string { return "x" },
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NA") || !strings.Contains(out, `label="x"`) || !strings.Contains(out, `graph "custom"`) {
		t.Fatalf("custom labels not applied:\n%s", out)
	}
}

func TestGridRendering(t *testing.T) {
	out := Grid(2, 3, []int{0, 5})
	want := "# . .\n. . #\n"
	if out != want {
		t.Fatalf("grid = %q, want %q", out, want)
	}
}

func TestTreeRendering(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(2, 3, 1)
	g.AddEdge(2, 4, 1)
	out := Tree(g, 0, []int{2})
	if !strings.Contains(out, "2 (ct 3) *") {
		t.Fatalf("copy star missing:\n%s", out)
	}
	if !strings.HasPrefix(out, "0\n") {
		t.Fatalf("root line wrong:\n%s", out)
	}
	for v := 0; v < 5; v++ {
		if !strings.Contains(out, "1 (ct 2)") {
			t.Fatalf("node rendering missing:\n%s", out)
		}
	}
	// leaves use the corner connector
	if !strings.Contains(out, "└─") || !strings.Contains(out, "├─") {
		t.Fatalf("connectors missing:\n%s", out)
	}
}

func TestPlacementSummary(t *testing.T) {
	out := PlacementSummary([]string{"alpha", ""}, [][]int{{1, 2}, {0}})
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "object-1") {
		t.Fatalf("summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "2 copies at [1 2]") {
		t.Fatalf("copy listing wrong:\n%s", out)
	}
}
