package gen

import (
	"netplace/internal/graph"
)

// Classic parallel-machine interconnects, the network class behind the
// paper's virtual-shared-memory scenario. All are deterministic.

// Butterfly returns the d-dimensional (wrapped = false) butterfly network:
// (d+1) levels of 2^d rows; node (l, r) connects to (l+1, r) and to
// (l+1, r XOR 2^l). Ids are l*2^d + r.
func Butterfly(d int, wrapped bool, w WeightFn) *graph.Graph {
	rows := 1 << d
	levels := d + 1
	if wrapped {
		levels = d
	}
	id := func(l, r int) int { return l*rows + r }
	g := graph.New(levels * rows)
	for l := 0; l < d; l++ {
		nl := l + 1
		if wrapped {
			nl = (l + 1) % d
		}
		if nl == l {
			continue // d == 1 wrapped degenerates
		}
		for r := 0; r < rows; r++ {
			straight := id(nl, r)
			cross := id(nl, r^(1<<l))
			g.AddEdge(id(l, r), straight, w(id(l, r), straight))
			g.AddEdge(id(l, r), cross, w(id(l, r), cross))
		}
	}
	return g
}

// DeBruijn returns the binary de Bruijn graph on 2^d nodes as an undirected
// network: node x connects to (2x mod 2^d) and (2x+1 mod 2^d). Self loops
// are skipped and parallel edges collapsed.
func DeBruijn(d int, w WeightFn) *graph.Graph {
	n := 1 << d
	g := graph.New(n)
	type pair struct{ u, v int }
	seen := make(map[pair]bool)
	add := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		g.AddEdge(u, v, w(u, v))
	}
	for x := 0; x < n; x++ {
		add(x, (2*x)%n)
		add(x, (2*x+1)%n)
	}
	return g
}

// CubeConnectedCycles returns the d-dimensional CCC: each hypercube corner
// is replaced by a cycle of d nodes; node (corner, i) connects to
// (corner, i±1 mod d) along the cycle and to (corner XOR 2^i, i) across
// dimension i. Ids are corner*d + i. Requires d >= 3.
func CubeConnectedCycles(d int, w WeightFn) *graph.Graph {
	if d < 3 {
		panic("gen: cube-connected cycles needs d >= 3")
	}
	corners := 1 << d
	id := func(c, i int) int { return c*d + i }
	g := graph.New(corners * d)
	for c := 0; c < corners; c++ {
		for i := 0; i < d; i++ {
			// cycle edge
			j := (i + 1) % d
			g.AddEdge(id(c, i), id(c, j), w(id(c, i), id(c, j)))
			// dimension edge (add once)
			cc := c ^ (1 << i)
			if c < cc {
				g.AddEdge(id(c, i), id(cc, i), w(id(c, i), id(cc, i)))
			}
		}
	}
	return g
}

// ShuffleExchange returns the binary shuffle-exchange network on 2^d nodes:
// exchange edges flip the lowest bit, shuffle edges rotate the bit string
// left. Self loops skipped, parallel edges collapsed.
func ShuffleExchange(d int, w WeightFn) *graph.Graph {
	n := 1 << d
	g := graph.New(n)
	type pair struct{ u, v int }
	seen := make(map[pair]bool)
	add := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		g.AddEdge(u, v, w(u, v))
	}
	for x := 0; x < n; x++ {
		add(x, x^1) // exchange
		shuffled := ((x << 1) | (x >> (d - 1))) & (n - 1)
		add(x, shuffled) // shuffle
	}
	return g
}
