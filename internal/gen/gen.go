// Package gen builds the network topologies used throughout the evaluation:
// trees of several shapes, rings, meshes, hypercubes, complete graphs,
// random graphs, and the two-level "Internet-like" clustered networks that
// the data-management literature (Maggs et al.) uses as a WWW stand-in.
//
// All generators are deterministic given a *rand.Rand; edge weights model
// the paper's per-transmission fees ct(e).
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"netplace/internal/graph"
)

// WeightFn produces an edge weight for edge (u, v). Generators call it once
// per edge created.
type WeightFn func(u, v int) float64

// UnitWeights assigns weight 1 to every edge (the total-load model's uniform
// fee).
func UnitWeights(u, v int) float64 { return 1 }

// UniformWeights returns a WeightFn drawing weights uniformly from [lo, hi).
func UniformWeights(rng *rand.Rand, lo, hi float64) WeightFn {
	return func(u, v int) float64 { return lo + rng.Float64()*(hi-lo) }
}

// Path returns the path graph on n nodes: 0-1-2-...-(n-1).
func Path(n int, w WeightFn) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, w(i, i+1))
	}
	return g
}

// Star returns the star on n nodes with node 0 as the center.
func Star(n int, w WeightFn) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, w(0, i))
	}
	return g
}

// KaryTree returns the complete k-ary tree with n nodes, rooted at node 0;
// node i's parent is (i-1)/k.
func KaryTree(n, k int, w WeightFn) *graph.Graph {
	if k < 1 {
		panic("gen: k-ary tree needs k >= 1")
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		p := (i - 1) / k
		g.AddEdge(p, i, w(p, i))
	}
	return g
}

// RandomTree returns a uniformly random recursive tree on n nodes: node i
// attaches to a uniform random earlier node.
func RandomTree(n int, rng *rand.Rand, w WeightFn) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		p := rng.Intn(i)
		g.AddEdge(p, i, w(p, i))
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine of length spine with legs
// hanging off round-robin, n nodes total.
func Caterpillar(n, spine int, w WeightFn) *graph.Graph {
	if spine < 1 || spine > n {
		panic("gen: bad caterpillar spine")
	}
	g := graph.New(n)
	for i := 1; i < spine; i++ {
		g.AddEdge(i-1, i, w(i-1, i))
	}
	for i := spine; i < n; i++ {
		p := (i - spine) % spine
		g.AddEdge(p, i, w(p, i))
	}
	return g
}

// Ring returns the cycle on n nodes.
func Ring(n int, w WeightFn) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if i < j || n == 2 && i == 0 {
			g.AddEdge(i, j, w(i, j))
		}
	}
	if n > 2 {
		// close the ring
		g.AddEdge(n-1, 0, w(n-1, 0))
	}
	return g
}

// Grid returns the rows x cols 2-dimensional mesh.
func Grid(rows, cols int, w WeightFn) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), w(id(r, c), id(r, c+1)))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), w(id(r, c), id(r+1, c)))
			}
		}
	}
	return g
}

// Torus returns the rows x cols 2-dimensional torus (wrap-around mesh).
func Torus(rows, cols int, w WeightFn) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: torus needs rows, cols >= 3")
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r, c), id(r, (c+1)%cols), w(id(r, c), id(r, (c+1)%cols)))
			g.AddEdge(id(r, c), id((r+1)%rows, c), w(id(r, c), id((r+1)%rows, c)))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int, w WeightFn) *graph.Graph {
	n := 1 << d
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.AddEdge(v, u, w(v, u))
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int, w WeightFn) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, w(i, j))
		}
	}
	return g
}

// ErdosRenyi returns a connected G(n, p) sample: edges included i.i.d. with
// probability p, then any disconnected result is patched by linking each
// later component to a uniform earlier node (so the sample is always usable
// as a network).
func ErdosRenyi(n int, p float64, rng *rand.Rand, w WeightFn) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j, w(i, j))
			}
		}
	}
	patchConnect(g, rng, w)
	return g
}

// RandomGeometric places n nodes uniformly in the unit square and connects
// pairs within Euclidean distance radius; edge weight defaults to the
// Euclidean distance scaled by scale when w == nil. Patched to connectivity.
func RandomGeometric(n int, radius float64, rng *rand.Rand, scale float64) *graph.Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	g := graph.New(n)
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d <= radius {
				g.AddEdge(i, j, d*scale)
			}
		}
	}
	patchConnect(g, rng, func(u, v int) float64 { return dist(u, v) * scale })
	return g
}

// WattsStrogatz returns a small-world graph: ring lattice with k neighbors
// per side, each edge rewired with probability beta. Patched to connectivity.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand, w WeightFn) *graph.Graph {
	if k < 1 || 2*k >= n {
		panic("gen: watts-strogatz needs 1 <= k and 2k < n")
	}
	type pair struct{ u, v int }
	seen := make(map[pair]bool)
	g := graph.New(n)
	addOnce := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[pair{u, v}] {
			return
		}
		seen[pair{u, v}] = true
		g.AddEdge(u, v, w(u, v))
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			t := (i + j) % n
			if rng.Float64() < beta {
				t = rng.Intn(n)
			}
			addOnce(i, t)
		}
	}
	patchConnect(g, rng, w)
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: each new node
// attaches m edges to existing nodes with probability proportional to degree.
func BarabasiAlbert(n, m int, rng *rand.Rand, w WeightFn) *graph.Graph {
	if m < 1 || n < m+1 {
		panic("gen: barabasi-albert needs n > m >= 1")
	}
	g := graph.New(n)
	// endpoint multiset for proportional sampling
	var ends []int
	for i := 1; i <= m; i++ {
		g.AddEdge(0, i, w(0, i))
		ends = append(ends, 0, i)
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			chosen[ends[rng.Intn(len(ends))]] = true
		}
		for u := range chosen {
			g.AddEdge(u, v, w(u, v))
			ends = append(ends, u, v)
		}
	}
	return g
}

// ClusteredParams configures the Internet-like two-level topology.
type ClusteredParams struct {
	Clusters    int     // number of access clusters
	ClusterSize int     // nodes per cluster (including its gateway)
	IntraWeight float64 // fee on intra-cluster links (cheap LAN)
	InterWeight float64 // fee on backbone links (expensive WAN)
	Backbone    float64 // probability of an extra backbone shortcut
}

// Clustered builds a two-level "Internet-like" network in the spirit of the
// clustered networks of Maggs et al. [10]: each cluster is a cheap star
// around a gateway; gateways form an expensive backbone ring with random
// shortcuts. Node 0..Clusters-1 are the gateways.
func Clustered(p ClusteredParams, rng *rand.Rand) *graph.Graph {
	if p.Clusters < 1 || p.ClusterSize < 1 {
		panic("gen: bad clustered params")
	}
	n := p.Clusters * p.ClusterSize
	g := graph.New(n)
	// Backbone ring over gateways 0..Clusters-1.
	for c := 0; c < p.Clusters; c++ {
		next := (c + 1) % p.Clusters
		if c < next || p.Clusters == 2 && c == 0 {
			g.AddEdge(c, next, p.InterWeight)
		}
	}
	if p.Clusters > 2 {
		g.AddEdge(p.Clusters-1, 0, p.InterWeight)
	}
	// Random backbone shortcuts.
	for a := 0; a < p.Clusters; a++ {
		for b := a + 2; b < p.Clusters; b++ {
			if a == 0 && b == p.Clusters-1 {
				continue // ring edge already present
			}
			if rng.Float64() < p.Backbone {
				g.AddEdge(a, b, p.InterWeight)
			}
		}
	}
	// Cluster members: node id = Clusters + c*(ClusterSize-1) + i attaches
	// to gateway c.
	id := p.Clusters
	for c := 0; c < p.Clusters; c++ {
		for i := 0; i < p.ClusterSize-1; i++ {
			g.AddEdge(c, id, p.IntraWeight)
			id++
		}
	}
	return g
}

// FatTree returns a simplified 3-level fat-tree datacenter topology with k
// pods (k even): k^2/4 core switches, k aggregation + k edge switches per
// pod half... reduced here to the standard k-port fat tree node counts.
// Edge weights: core links cost coreW, pod links cost podW.
func FatTree(k int, coreW, podW float64) *graph.Graph {
	if k < 2 || k%2 != 0 {
		panic("gen: fat tree needs even k >= 2")
	}
	core := k * k / 4
	aggPerPod := k / 2
	edgePerPod := k / 2
	n := core + k*(aggPerPod+edgePerPod)
	g := graph.New(n)
	aggID := func(pod, i int) int { return core + pod*aggPerPod + i }
	edgeID := func(pod, i int) int { return core + k*aggPerPod + pod*edgePerPod + i }
	// core <-> aggregation
	for pod := 0; pod < k; pod++ {
		for a := 0; a < aggPerPod; a++ {
			for c := 0; c < k/2; c++ {
				coreIdx := a*(k/2) + c
				g.AddEdge(coreIdx, aggID(pod, a), coreW)
			}
		}
		// aggregation <-> edge within pod
		for a := 0; a < aggPerPod; a++ {
			for e := 0; e < edgePerPod; e++ {
				g.AddEdge(aggID(pod, a), edgeID(pod, e), podW)
			}
		}
	}
	return g
}

// patchConnect links components to node 0's component with random edges so
// generators always return connected graphs.
func patchConnect(g *graph.Graph, rng *rand.Rand, w WeightFn) {
	n := g.N()
	if n == 0 {
		return
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	// Adjacency snapshot taken before any patch edge: every edge added
	// below leads to an already-marked node, so traversals never need it —
	// and interleaving AddEdge with graph traversals would rebuild the
	// graph's compacted adjacency once per component.
	adj := make([][]int32, n)
	for _, e := range g.Edges() {
		adj[e.U] = append(adj[e.U], int32(e.V))
		adj[e.V] = append(adj[e.V], int32(e.U))
	}
	var stack []int
	mark := func(s, c int) {
		stack = stack[:0]
		stack = append(stack, s)
		comp[s] = c
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range adj[v] {
				if comp[u] < 0 {
					comp[u] = c
					stack = append(stack, int(u))
				}
			}
		}
	}
	mark(0, 0)
	for v := 1; v < n; v++ {
		if comp[v] < 0 {
			// attach v's component to a random already-connected node
			u := rng.Intn(v)
			for comp[u] != 0 {
				u = rng.Intn(v)
			}
			g.AddEdge(u, v, w(u, v))
			mark(v, 0)
		}
	}
}

// Name-based dispatch used by the CLI tools.

// Build constructs a topology by name with a standard parameterisation;
// it exists so cmd/gennet and tests can request topologies uniformly.
func Build(name string, n int, rng *rand.Rand) (*graph.Graph, error) {
	uw := UniformWeights(rng, 0.5, 2.0)
	switch name {
	case "path":
		return Path(n, uw), nil
	case "star":
		return Star(n, uw), nil
	case "binary-tree":
		return KaryTree(n, 2, uw), nil
	case "random-tree":
		return RandomTree(n, rng, uw), nil
	case "ring":
		return Ring(n, uw), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return Grid(side, side, uw), nil
	case "hypercube":
		d := 1
		for 1<<d < n {
			d++
		}
		return Hypercube(d, uw), nil
	case "complete":
		return Complete(n, uw), nil
	case "er":
		return ErdosRenyi(n, math.Min(1, 2*math.Log(float64(n)+1)/float64(n)), rng, uw), nil
	case "geometric":
		return RandomGeometric(n, math.Sqrt(3*math.Log(float64(n)+2)/float64(n)), rng, 1.0), nil
	case "clustered":
		c := int(math.Max(2, math.Round(math.Sqrt(float64(n)/4)))) // few big clusters
		size := (n + c - 1) / c
		return Clustered(ClusteredParams{Clusters: c, ClusterSize: size, IntraWeight: 0.2, InterWeight: 3.0, Backbone: 0.3}, rng), nil
	default:
		return nil, fmt.Errorf("gen: unknown topology %q", name)
	}
}
