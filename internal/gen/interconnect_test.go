package gen

import (
	"testing"
)

func TestButterflyShape(t *testing.T) {
	d := 3
	g := Butterfly(d, false, UnitWeights)
	rows := 1 << d
	if g.N() != (d+1)*rows {
		t.Fatalf("nodes %d, want %d", g.N(), (d+1)*rows)
	}
	// every level transition contributes 2 edges per row
	if g.M() != d*rows*2 {
		t.Fatalf("edges %d, want %d", g.M(), d*rows*2)
	}
	if !g.Connected() {
		t.Fatal("butterfly disconnected")
	}
	// interior nodes have degree 4, boundary levels degree 2
	for r := 0; r < rows; r++ {
		if g.Degree(r) != 2 {
			t.Fatalf("level-0 node degree %d, want 2", g.Degree(r))
		}
		if g.Degree(d*rows+r) != 2 {
			t.Fatalf("last-level node degree %d, want 2", g.Degree(d*rows+r))
		}
	}
}

func TestWrappedButterfly(t *testing.T) {
	g := Butterfly(3, true, UnitWeights)
	if g.N() != 3*8 {
		t.Fatalf("nodes %d, want 24", g.N())
	}
	if !g.Connected() {
		t.Fatal("wrapped butterfly disconnected")
	}
	// 4-regular
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestDeBruijnShape(t *testing.T) {
	g := DeBruijn(4, UnitWeights)
	if g.N() != 16 {
		t.Fatalf("nodes %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("de bruijn disconnected")
	}
	// max degree 4 (two out-, two in-neighbours collapsed undirected)
	if g.MaxDegree() > 4 {
		t.Fatalf("max degree %d > 4", g.MaxDegree())
	}
}

func TestCCCShape(t *testing.T) {
	d := 3
	g := CubeConnectedCycles(d, UnitWeights)
	if g.N() != (1<<d)*d {
		t.Fatalf("nodes %d, want %d", g.N(), (1<<d)*d)
	}
	if !g.Connected() {
		t.Fatal("CCC disconnected")
	}
	// CCC is 3-regular
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("node %d degree %d, want 3", v, g.Degree(v))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("d=2 must panic")
		}
	}()
	CubeConnectedCycles(2, UnitWeights)
}

func TestShuffleExchangeShape(t *testing.T) {
	g := ShuffleExchange(4, UnitWeights)
	if g.N() != 16 {
		t.Fatalf("nodes %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("shuffle-exchange disconnected")
	}
	if g.MaxDegree() > 3 {
		t.Fatalf("max degree %d > 3", g.MaxDegree())
	}
}

func TestInterconnectDeterminism(t *testing.T) {
	a := Butterfly(3, false, UnitWeights)
	b := Butterfly(3, false, UnitWeights)
	if a.M() != b.M() || a.N() != b.N() {
		t.Fatal("butterfly not deterministic")
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatal("butterfly edge order not deterministic")
		}
	}
}
