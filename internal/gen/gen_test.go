package gen

import (
	"math/rand"
	"testing"

	"netplace/internal/graph"
)

func TestDeterministicTopologies(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.Graph
		nodes int
		edges int
	}{
		{"path", func() *graph.Graph { return Path(10, UnitWeights) }, 10, 9},
		{"star", func() *graph.Graph { return Star(10, UnitWeights) }, 10, 9},
		{"binary", func() *graph.Graph { return KaryTree(15, 2, UnitWeights) }, 15, 14},
		{"ternary", func() *graph.Graph { return KaryTree(13, 3, UnitWeights) }, 13, 12},
		{"ring", func() *graph.Graph { return Ring(8, UnitWeights) }, 8, 8},
		{"ring2", func() *graph.Graph { return Ring(2, UnitWeights) }, 2, 1},
		{"grid", func() *graph.Graph { return Grid(4, 5, UnitWeights) }, 20, 31},
		{"torus", func() *graph.Graph { return Torus(3, 4, UnitWeights) }, 12, 24},
		{"hypercube", func() *graph.Graph { return Hypercube(4, UnitWeights) }, 16, 32},
		{"complete", func() *graph.Graph { return Complete(7, UnitWeights) }, 7, 21},
		{"caterpillar", func() *graph.Graph { return Caterpillar(12, 5, UnitWeights) }, 12, 11},
	}
	for _, tc := range cases {
		g := tc.build()
		if g.N() != tc.nodes {
			t.Errorf("%s: %d nodes, want %d", tc.name, g.N(), tc.nodes)
		}
		if g.M() != tc.edges {
			t.Errorf("%s: %d edges, want %d", tc.name, g.M(), tc.edges)
		}
		if !g.Connected() {
			t.Errorf("%s: not connected", tc.name)
		}
	}
}

func TestTreesAreTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.Graph{
		Path(20, UnitWeights),
		Star(20, UnitWeights),
		KaryTree(20, 2, UnitWeights),
		RandomTree(20, rng, UnitWeights),
		Caterpillar(20, 7, UnitWeights),
	} {
		if !g.IsTree() {
			t.Errorf("generator produced a non-tree with %d nodes / %d edges", g.N(), g.M())
		}
	}
}

func TestRandomGraphsConnectedAndSeeded(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := ErdosRenyi(30, 0.05, rand.New(rand.NewSource(seed)), UnitWeights)
		b := ErdosRenyi(30, 0.05, rand.New(rand.NewSource(seed)), UnitWeights)
		if !a.Connected() {
			t.Fatalf("seed %d: ER not connected", seed)
		}
		if a.M() != b.M() {
			t.Fatalf("seed %d: ER not deterministic (%d vs %d edges)", seed, a.M(), b.M())
		}
		g := RandomGeometric(40, 0.2, rand.New(rand.NewSource(seed)), 1)
		if !g.Connected() {
			t.Fatalf("seed %d: geometric not connected", seed)
		}
		ws := WattsStrogatz(30, 2, 0.2, rand.New(rand.NewSource(seed)), UnitWeights)
		if !ws.Connected() {
			t.Fatalf("seed %d: watts-strogatz not connected", seed)
		}
		ba := BarabasiAlbert(30, 2, rand.New(rand.NewSource(seed)), UnitWeights)
		if !ba.Connected() {
			t.Fatalf("seed %d: barabasi-albert not connected", seed)
		}
	}
}

func TestClusteredShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := ClusteredParams{Clusters: 5, ClusterSize: 6, IntraWeight: 0.1, InterWeight: 5, Backbone: 0.5}
	g := Clustered(p, rng)
	if g.N() != 30 {
		t.Fatalf("nodes %d", g.N())
	}
	if !g.Connected() {
		t.Fatal("clustered not connected")
	}
	// Gateways 0..4 must interconnect via expensive edges only; leaf nodes
	// attach by one cheap edge.
	for _, e := range g.Edges() {
		if e.U < 5 && e.V < 5 {
			if e.W != 5 {
				t.Fatalf("backbone edge fee %v", e.W)
			}
		} else if e.W != 0.1 {
			t.Fatalf("access edge fee %v", e.W)
		}
	}
	// Every non-gateway node has degree 1 (star inside cluster).
	for v := 5; v < 30; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("member node %d degree %d", v, g.Degree(v))
		}
	}
}

func TestFatTreeShape(t *testing.T) {
	g := FatTree(4, 2, 1)
	// k=4: 4 core, 4 pods x (2 agg + 2 edge) = 4 + 16 = 20 nodes
	if g.N() != 20 {
		t.Fatalf("nodes %d, want 20", g.N())
	}
	if !g.Connected() {
		t.Fatal("fat tree not connected")
	}
}

func TestBuildDispatch(t *testing.T) {
	names := []string{"path", "star", "binary-tree", "random-tree", "ring", "grid",
		"hypercube", "complete", "er", "geometric", "clustered"}
	for _, name := range names {
		g, err := Build(name, 25, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.Connected() {
			t.Fatalf("%s: disconnected", name)
		}
		if g.N() < 16 {
			t.Fatalf("%s: suspiciously few nodes %d", name, g.N())
		}
	}
	if _, err := Build("nope", 10, rand.New(rand.NewSource(0))); err == nil {
		t.Fatal("unknown topology must error")
	}
}
