package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"netplace/internal/core"
	"netplace/internal/gen"
	"netplace/internal/tree"
)

func randomInstance(rng *rand.Rand, n int, treeOnly bool) *core.Instance {
	var g = gen.RandomTree(n, rng, gen.UniformWeights(rng, 1, 6))
	if !treeOnly {
		g = gen.ErdosRenyi(n, 0.4, rng, gen.UniformWeights(rng, 1, 6))
	}
	storage := make([]float64, n)
	for v := range storage {
		storage[v] = rng.Float64() * 15
	}
	obj := core.Object{Reads: make([]int64, n), Writes: make([]int64, n)}
	for v := 0; v < n; v++ {
		obj.Reads[v] = rng.Int63n(8)
		if rng.Float64() < 0.6 {
			obj.Writes[v] = rng.Int63n(5)
		}
	}
	return core.MustInstance(g, storage, []core.Object{obj})
}

func TestOptimalRestrictedMatchesDirectEnumeration(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		in := randomInstance(rng, n, false)
		got := OptimalRestricted(in)[0]
		// direct: reuse core.ObjectCost
		best := math.Inf(1)
		set := make([]int, 0, n)
		for mask := 1; mask < 1<<n; mask++ {
			set = set[:0]
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					set = append(set, v)
				}
			}
			if c := in.ObjectCost(&in.Objects[0], set).Total(); c < best {
				best = c
			}
		}
		if math.Abs(got.Cost-best) > 1e-9 {
			t.Fatalf("seed %d: OptimalRestricted %v, direct %v", seed, got.Cost, best)
		}
		if c := in.ObjectCost(&in.Objects[0], got.Copies).Total(); math.Abs(c-got.Cost) > 1e-9 {
			t.Fatalf("seed %d: reported copies cost %v, claimed %v", seed, c, got.Cost)
		}
	}
}

// TestUnrestrictedOnTreesMatchesTreeBruteForce: on a tree, the unrestricted
// model (write pays Steiner(copies ∪ writer)) is exactly the Section 3 tree
// model, for which the tree package has an independent brute force.
func TestUnrestrictedOnTreesMatchesTreeBruteForce(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		in := randomInstance(rng, n, true)
		obj := &in.Objects[0]
		got := OptimalUnrestricted(in)[0]
		_, want := tree.BruteForce(in.G, in.Storage, obj.Reads, obj.Writes)
		if math.Abs(got.Cost-want) > 1e-9 {
			t.Fatalf("seed %d: unrestricted %v, tree brute force %v", seed, got.Cost, want)
		}
	}
}

// TestLemma1Gap verifies the restricted optimum is never better than the
// unrestricted one and, per Lemma 1's bound (C_OPTW <= 4 C_OPT), never more
// than 4x worse.
func TestLemma1Gap(t *testing.T) {
	worst := 1.0
	for seed := int64(100); seed < 140; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		in := randomInstance(rng, n, false)
		r := OptimalRestricted(in)[0].Cost
		u := OptimalUnrestricted(in)[0].Cost
		if r < u-1e-9 {
			t.Fatalf("seed %d: restricted optimum %v beats unrestricted %v", seed, r, u)
		}
		if u > 0 {
			ratio := r / u
			if ratio > worst {
				worst = ratio
			}
			if ratio > 4+1e-9 {
				t.Fatalf("seed %d: restricted/unrestricted ratio %v exceeds Lemma 1's 4", seed, ratio)
			}
		}
	}
	t.Logf("worst restricted/unrestricted ratio: %.4f (Lemma 1 bound: 4)", worst)
}

func TestReadOnlyModelsCoincide(t *testing.T) {
	// With no writes, both accountings are plain facility location, so the
	// optima must agree exactly.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		in := randomInstance(rng, n, false)
		for v := 0; v < n; v++ {
			in.Objects[0].Writes[v] = 0
		}
		r := OptimalRestricted(in)[0].Cost
		u := OptimalUnrestricted(in)[0].Cost
		if math.Abs(r-u) > 1e-9 {
			t.Fatalf("seed %d: read-only optima differ: %v vs %v", seed, r, u)
		}
	}
}

func TestOptimalCtxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomInstance(rng, 15, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimalRestrictedCtx(ctx, in); err != context.Canceled {
		t.Fatalf("OptimalRestrictedCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := OptimalUnrestrictedCtx(ctx, in); err != context.Canceled {
		t.Fatalf("OptimalUnrestrictedCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}
	// An unconstrained context must reproduce the wrapper's result.
	want := OptimalRestricted(in)
	got, err := OptimalRestrictedCtx(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[0].Cost != want[0].Cost {
		t.Fatalf("ctx and wrapper variants disagree: %+v vs %+v", got, want)
	}
}
