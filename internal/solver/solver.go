// Package solver computes exact optima of the static data management
// problem on small arbitrary networks by subset enumeration. It supports
// both cost accountings:
//
//   - the restricted (Section 2) model: reads and write-access messages go
//     to the nearest copy and updates multicast along a metric-closure MST;
//   - the unrestricted model: a write at v pays a minimum Steiner tree
//     spanning the copies and v (the best possible update set).
//
// The Steiner weights for every copy set at once come from a single
// Dreyfus–Wagner table with all nodes as terminals, so enumeration over all
// 2^n - 1 subsets is O(3^n * n) overall — practical to n ≈ 16.
//
// These optima are the comparison points for experiments E1 (Theorem 7's
// approximation factor) and E8 (Lemma 1's restricted-vs-unrestricted gap).
// Because enumeration can run for minutes near the size limits, the Ctx
// variants accept a context and abandon the scan when it is cancelled —
// the placement service threads request contexts through them so a client
// disconnect stops the burn.
package solver

import (
	"context"
	"math"

	"netplace/internal/core"
	"netplace/internal/graph"
	"netplace/internal/metric"
)

// ctxCheckMasks is how many enumeration steps run between context checks;
// a power of two so the check compiles to a mask test.
const ctxCheckMasks = 1 << 12

// Exact holds per-object exact solutions.
type Exact struct {
	Copies []int
	Cost   float64
}

// steinerTable computes dw[mask][v] = weight of a minimum Steiner tree
// spanning {nodes in mask} ∪ {v} under the dense metric dist. It polls ctx
// between masks (the table is the O(3^n · n) bulk of the unrestricted
// solve) and returns ctx.Err() once cancelled.
func steinerTable(ctx context.Context, dist [][]float64) ([][]float64, error) {
	n := len(dist)
	full := 1<<n - 1
	dp := make([][]float64, full+1)
	dp[0] = make([]float64, n) // empty set: zero
	for i := 0; i < n; i++ {
		dp[1<<i] = make([]float64, n)
		for v := 0; v < n; v++ {
			dp[1<<i][v] = dist[i][v]
		}
	}
	for mask := 1; mask <= full; mask++ {
		if mask%ctxCheckMasks == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if dp[mask] != nil {
			continue
		}
		dp[mask] = make([]float64, n)
		row := dp[mask]
		for v := range row {
			row[v] = math.Inf(1)
		}
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub < other {
				continue
			}
			a, b := dp[sub], dp[other]
			for v := 0; v < n; v++ {
				if c := a[v] + b[v]; c < row[v] {
					row[v] = c
				}
			}
		}
		// One metric relaxation pass: dist is a metric closure, so a single
		// pass through an intermediate point is exact.
		for v := 0; v < n; v++ {
			best := row[v]
			for u := 0; u < n; u++ {
				if c := row[u] + dist[u][v]; c < best {
					best = c
				}
			}
			row[v] = best
		}
	}
	return dp, nil
}

// OptimalRestricted finds, for each object, the copy set minimising the
// restricted-model cost (core.ObjectCost): storage + nearest-copy reads and
// write accesses + W * MST(copies). It is OptimalRestrictedCtx without
// cancellation.
func OptimalRestricted(in *core.Instance) []Exact {
	out, err := OptimalRestrictedCtx(context.Background(), in)
	if err != nil {
		panic("solver: " + err.Error()) // unreachable: Background never cancels
	}
	return out
}

// OptimalRestrictedCtx is OptimalRestricted with cooperative cancellation:
// the subset scan polls ctx every few thousand masks and returns ctx.Err()
// once it is cancelled, discarding partial results.
func OptimalRestrictedCtx(ctx context.Context, in *core.Instance) ([]Exact, error) {
	n := in.N()
	if n > 20 {
		panic("solver: instance too large for enumeration")
	}
	dist := metric.Materialize(in.Metric())
	// Precompute MST weight for every subset incrementally: mst over a
	// subset is recomputed O(k^2); total sum_k C(n,k) k^2 is fine to n=16.
	out := make([]Exact, len(in.Objects))
	subset := make([]int, 0, n)
	mstCache := make([]float64, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		if mask%ctxCheckMasks == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		subset = subset[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				subset = append(subset, v)
			}
		}
		mstCache[mask] = graph.MetricMST(dist, subset)
	}
	for i := range in.Objects {
		obj := &in.Objects[i]
		W := float64(obj.TotalWrites())
		best := math.Inf(1)
		bestMask := 0
		for mask := 1; mask < 1<<n; mask++ {
			if mask%ctxCheckMasks == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			c := 0.0
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					c += in.Storage[v]
				}
			}
			if c >= best {
				continue
			}
			for v := 0; v < n; v++ {
				f := obj.Reads[v] + obj.Writes[v]
				if f == 0 {
					continue
				}
				nearest := math.Inf(1)
				for u := 0; u < n; u++ {
					if mask&(1<<u) != 0 && dist[v][u] < nearest {
						nearest = dist[v][u]
					}
				}
				c += float64(f) * nearest
			}
			c += W * mstCache[mask]
			if c < best {
				best = c
				bestMask = mask
			}
		}
		// Size scales all components identically: the argmin is invariant,
		// only the bill scales.
		out[i] = Exact{Copies: maskToSet(bestMask, n), Cost: best * obj.Scale()}
	}
	return out, nil
}

// OptimalUnrestricted finds, for each object, the copy set minimising the
// unrestricted cost: storage + nearest-copy reads + for each write at v the
// minimum Steiner tree spanning copies ∪ {v}. This is the strongest
// adversary consistent with the paper's model (every write uses its own
// optimal update set). It is OptimalUnrestrictedCtx without cancellation.
func OptimalUnrestricted(in *core.Instance) []Exact {
	out, err := OptimalUnrestrictedCtx(context.Background(), in)
	if err != nil {
		panic("solver: " + err.Error()) // unreachable: Background never cancels
	}
	return out
}

// OptimalUnrestrictedCtx is OptimalUnrestricted with cooperative
// cancellation, polling ctx between enumeration blocks like
// OptimalRestrictedCtx.
func OptimalUnrestrictedCtx(ctx context.Context, in *core.Instance) ([]Exact, error) {
	n := in.N()
	if n > 16 {
		panic("solver: instance too large for Steiner enumeration")
	}
	dist := metric.Materialize(in.Metric())
	dw, err := steinerTable(ctx, dist)
	if err != nil {
		return nil, err
	}
	out := make([]Exact, len(in.Objects))
	for i := range in.Objects {
		obj := &in.Objects[i]
		best := math.Inf(1)
		bestMask := 0
		for mask := 1; mask < 1<<n; mask++ {
			if mask%ctxCheckMasks == 0 && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			c := 0.0
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					c += in.Storage[v]
				}
			}
			for v := 0; v < n && c < best; v++ {
				if obj.Reads[v] > 0 {
					nearest := math.Inf(1)
					for u := 0; u < n; u++ {
						if mask&(1<<u) != 0 && dist[v][u] < nearest {
							nearest = dist[v][u]
						}
					}
					c += float64(obj.Reads[v]) * nearest
				}
				if obj.Writes[v] > 0 {
					// dw[mask][v] spans the copy set ∪ {v} exactly.
					c += float64(obj.Writes[v]) * dw[mask][v]
				}
			}
			if c < best {
				best = c
				bestMask = mask
			}
		}
		out[i] = Exact{Copies: maskToSet(bestMask, n), Cost: best * obj.Scale()}
	}
	return out, nil
}

func maskToSet(mask, n int) []int {
	var s []int
	for v := 0; v < n; v++ {
		if mask&(1<<v) != 0 {
			s = append(s, v)
		}
	}
	return s
}
