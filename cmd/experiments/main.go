// Command experiments regenerates the full evaluation suite E1–E12 (see
// DESIGN.md Section 5 and EXPERIMENTS.md) and prints every table to stdout.
//
// Usage:
//
//	experiments [-quick] [-only E7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netplace/internal/exper"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "smaller instance counts (benchmark-scale)")
		only   = flag.String("only", "", "run a single experiment by id prefix, e.g. E7 or E2")
		format = flag.String("format", "text", "output format: text|markdown|csv")
	)
	flag.Parse()
	cfg := exper.Config{Quick: *quick}
	if *format == "text" {
		fmt.Printf("netplace evaluation suite (quick=%v)\n", *quick)
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println()
	}
	for _, tb := range exper.All(cfg) {
		if *only != "" && !strings.HasPrefix(tb.ID, *only) {
			continue
		}
		var err error
		switch *format {
		case "text":
			tb.Fprint(os.Stdout)
		case "markdown":
			err = tb.Markdown(os.Stdout)
		case "csv":
			err = tb.CSV(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown format %q\n", *format)
			os.Exit(1)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
