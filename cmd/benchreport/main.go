// Command benchreport runs the repository's kernel micro-benchmarks
// programmatically (via testing.Benchmark) and emits a machine-readable
// JSON report — the benchmark trajectory artifact (BENCH_PR3.json and
// successors) that CI regenerates and compares against the committed
// baseline on every push.
//
// Usage:
//
//	benchreport [-out report.json] [-baseline BENCH_PR5.json] [-max-regress 8]
//	            [-cpu 1,2,4,8]
//
// The kernels cover the steady-state hot path of the placement service on
// a resident 2500-node lazy-oracle instance: full re-solve, cost
// evaluation, multi-source sweep, cache-hit row fetch, the batched
// what-if path both incremental and with the incremental path disabled
// (the from-scratch fallback) — so the report captures exactly the ratio
// the incremental path buys — since PR 4, one full streaming epoch of
// the adaptive engine (event accounting + estimate roll + incremental
// re-solve), and, since PR 5, `_par` variants of the solve, what-if and
// stream kernels running with intra-solve parallelism on all cores
// (core.Options.Parallel / the service parallel option), so serial and
// sharded pipelines are tracked side by side.
//
// With -cpu, the whole kernel set is re-run once per requested
// GOMAXPROCS value and every entry is emitted as name/cpu=N — the form
// used to measure how the `_par` kernels scale with cores. Without it,
// entries carry bare names at the ambient GOMAXPROCS (the form the CI
// gate compares).
//
// With -baseline, the current numbers are compared entry by entry against
// the committed report: a kernel slower (or allocation-heavier) than
// max-regress times the baseline fails the run. The threshold is
// deliberately generous — CI machines are noisy; the gate catches
// order-of-magnitude rot (a lost pool, a reintroduced boxing heap), not
// percentage drift.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"netplace/internal/benchkit"
	"netplace/internal/core"
	"netplace/internal/metric"
	"netplace/internal/service"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

// metricJSON is one kernel's measured costs.
type metricJSON struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// reportJSON is the on-disk report. Pre carries the pre-optimisation
// numbers measured when the trajectory file was first committed; the
// comparison gate only reads Benchmarks.
type reportJSON struct {
	Schema     string                `json:"schema"`
	Note       string                `json:"note,omitempty"`
	Benchmarks map[string]metricJSON `json:"benchmarks"`
	Pre        map[string]metricJSON `json:"pre,omitempty"`
}

// residentInstance is the shared 2500-node clustered-demand fixture —
// internal/benchkit guarantees bench_test.go measures the same workload.
func residentInstance(objects int) *core.Instance {
	return benchkit.ResidentInstance(objects)
}

var sink float64

// kernels enumerates the measured benchmarks. Each entry builds its own
// fixture outside the timed loop. The _par variants run the same
// workloads with intra-solve parallelism on all cores; their outputs are
// byte-identical to the serial kernels', only the schedule differs.
func kernels() map[string]func(b *testing.B) {
	lazyOpts := core.Options{Metric: core.MetricLazy, MetricRows: 64}
	parOpts := core.Options{Metric: core.MetricLazy, MetricRows: 64, Parallel: -1}
	benchSolve := func(opts core.Options) func(b *testing.B) {
		return func(b *testing.B) {
			in := residentInstance(8)
			core.Approximate(in, opts) // warm oracle and pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := core.Approximate(in, opts)
				sink += float64(len(p.Copies[0]))
			}
		}
	}
	return map[string]func(b *testing.B){
		"resident_solve_2500_lazy":     benchSolve(lazyOpts),
		"resident_solve_2500_lazy_par": benchSolve(parOpts),
		"resident_objectcost_2500_lazy": func(b *testing.B) {
			in := residentInstance(1)
			p := core.Approximate(in, lazyOpts)
			obj := &in.Objects[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += in.ObjectCost(obj, p.Copies[0]).Total()
			}
		},
		"resident_nearestof_2500_lazy": func(b *testing.B) {
			in := residentInstance(1)
			p := core.Approximate(in, lazyOpts)
			o := in.Metric()
			dst := make([]float64, in.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += metric.NearestOfInto(o, p.Copies[0], dst)[0]
			}
		},
		"lazy_row_hit_1024": func(b *testing.B) {
			in := residentInstance(1)
			in.UseMetric(core.MetricLazy, 1024)
			o := in.Metric()
			for u := 0; u < 1024; u++ {
				o.Row(u)
			}
			const working = 32
			for u := 1024 - working; u < 1024; u++ {
				o.Row(u)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += o.Row(1024 - working + i%working)[0]
			}
		},
		"whatif_incremental_2500": func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2})
		},
		"whatif_incremental_2500_par": func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2, Parallel: -1})
		},
		"whatif_full_2500": func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2, DisableIncremental: true})
		},
		// One op = one full streaming epoch on a resident 2500-node
		// instance: 512 Observe calls (accounting against the warm lazy
		// oracle) plus the epoch close (estimate roll, incremental
		// re-solve of changed objects, hysteresis).
		"stream_epoch_2500":     benchStreamEpoch(lazyOpts),
		"stream_epoch_2500_par": benchStreamEpoch(parOpts),
	}
}

// benchStreamEpoch builds the streaming-epoch kernel over the shared
// resident fixture with the given per-object solve options.
func benchStreamEpoch(opts core.Options) func(b *testing.B) {
	return func(b *testing.B) {
		in := residentInstance(8)
		rng := rand.New(rand.NewSource(7))
		const epoch = 512
		seq := workload.Sequence(in.Objects, epoch*64, rng)
		eng := stream.New(in, stream.Config{Epoch: epoch, Window: 4, Solve: opts})
		feed := func(k int) {
			for i := 0; i < epoch; i++ {
				if _, err := eng.Observe(seq[(k*epoch+i)%len(seq)]); err != nil {
					b.Fatal(err)
				}
			}
		}
		feed(0) // warm: first epoch close adopts the initial placement
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feed(i + 1)
		}
	}
}

// benchWhatIf measures one-object-changed scenarios against a resident
// 8-object instance: the incremental path re-solves 1 object and splices
// 7; the full path re-solves all 8 every time.
func benchWhatIf(b *testing.B, cfg service.Config) {
	srv := service.New(cfg)
	in := residentInstance(8)
	info, _ := srv.Engine().Registry().Add("bench", in)
	ctx := context.Background()
	reads := make([]int64, in.N())
	for v := range reads {
		reads[v] = int64(v % 7)
	}
	sc := service.Scenario{Objects: []service.ObjectPatch{{Name: in.Objects[0].Name, Reads: reads}}}
	opts := service.SolveOptions{Metric: "lazy", MetricRows: 64}
	// Warm the base solve so the loop measures scenario cost, not setup.
	if _, err := srv.Engine().Scenario(ctx, info.ID, opts, sc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := srv.Engine().Scenario(ctx, info.ID, opts, sc)
		if err != nil {
			b.Fatal(err)
		}
		sink += res.Breakdown.Total
	}
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	baseline := flag.String("baseline", "", "compare against this committed report; regressions fail the run")
	maxRegress := flag.Float64("max-regress", 8, "fail when a kernel exceeds this multiple of the baseline")
	note := flag.String("note", "", "free-form note recorded in the report")
	cpus := flag.String("cpu", "", "comma-separated GOMAXPROCS values; kernels run once per value as name/cpu=N")
	flag.Parse()

	cpuList, err := parseCPUList(*cpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(cpuList) > 0 && *baseline != "" {
		// Per-cpu entries are suffixed name/cpu=N and would never match a
		// baseline's bare kernel names; fail before the expensive runs.
		fmt.Fprintln(os.Stderr, "benchreport: -cpu and -baseline are mutually exclusive (per-cpu entries do not match baseline kernel names)")
		os.Exit(1)
	}

	rep := reportJSON{Schema: "netplace-bench/v1", Note: *note, Benchmarks: map[string]metricJSON{}}
	measure := func(suffix string) {
		for name, fn := range kernels() {
			r := testing.Benchmark(fn)
			name += suffix
			rep.Benchmarks[name] = metricJSON{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			fmt.Fprintf(os.Stderr, "%-38s %14.0f ns/op %10d B/op %8d allocs/op\n",
				name, rep.Benchmarks[name].NsPerOp, rep.Benchmarks[name].BytesPerOp, rep.Benchmarks[name].AllocsPerOp)
		}
	}
	if len(cpuList) == 0 {
		measure("")
	} else {
		prev := runtime.GOMAXPROCS(0)
		for _, c := range cpuList {
			runtime.GOMAXPROCS(c)
			measure(fmt.Sprintf("/cpu=%d", c))
		}
		runtime.GOMAXPROCS(prev)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	if *baseline != "" {
		if failures := compare(rep, *baseline, *maxRegress); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchreport: within", *maxRegress, "x of baseline", *baseline)
	}
}

// parseCPUList parses the -cpu flag: a comma-separated list of positive
// GOMAXPROCS values, empty meaning "ambient only".
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -cpu entry %q (want positive integers)", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// compare checks the current report against a committed baseline. Small
// absolute floors keep sub-millisecond kernels from tripping the gate on
// scheduler noise.
func compare(cur reportJSON, path string, maxRegress float64) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("cannot read baseline: %v", err)}
	}
	var base reportJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return []string{fmt.Sprintf("cannot parse baseline: %v", err)}
	}
	var failures []string
	for name, b := range base.Benchmarks {
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: kernel missing from current run", name))
			continue
		}
		if c.NsPerOp > b.NsPerOp*maxRegress && c.NsPerOp > 1e6 {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (>%.0fx)",
				name, c.NsPerOp, b.NsPerOp, maxRegress))
		}
		if float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*maxRegress && c.AllocsPerOp > 512 {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d (>%.0fx)",
				name, c.AllocsPerOp, b.AllocsPerOp, maxRegress))
		}
	}
	return failures
}
