// Command benchreport runs the repository's kernel micro-benchmarks
// programmatically (via testing.Benchmark) and emits a machine-readable
// JSON report — the benchmark trajectory artifact (BENCH_PR3.json and
// successors) that CI regenerates and compares against the committed
// baseline on every push.
//
// Usage:
//
//	benchreport [-out report.json] [-baseline BENCH_PR6.json] [-max-regress 8]
//	            [-sizes 2500,50k] [-kernels solve,stream] [-budget 10m]
//	            [-gate-par 1.5] [-cpuprofile cpu.out] [-cpu 1,2,4,8]
//
// The kernels cover the steady-state hot path of the placement service in
// two size tiers. The 2500-node tier measures a resident lazy-oracle
// instance: full re-solve, cost evaluation, multi-source sweep, cache-hit
// row fetch, the batched what-if path both incremental and from-scratch,
// and one full streaming epoch of the adaptive engine. The 50k tier (since
// PR 6) runs the solve, what-if and stream-epoch kernels on the sparse-grid
// acceptance topology — the size at which intra-solve parallelism is
// expected to pay — with `_par` variants on all cores and serial
// counterparts pinned to Parallel=1 (at 50k an unset knob resolves
// parallel under the size-aware auto policy, whose threshold is recorded
// in the report note). 2500-node kernels leave the knob unset, so they
// also measure that the auto default stays serial-fast at small sizes.
//
// -sizes and -kernels filter the kernel set (comma-separated size tags /
// name substrings); -budget stops starting new kernels once the wall-clock
// budget is spent, so the 50k tier cannot time out a CI job. Skipped or
// filtered kernels are exempt from the baseline comparison. -gate-par
// asserts that every measured `X_par` kernel beats its serial `X`
// counterpart by the given factor — the speedup gate the bench-large CI
// job runs on multi-core machines. -cpuprofile writes a pprof CPU profile
// covering the measured kernels.
//
// With -cpu, the whole kernel set is re-run once per requested
// GOMAXPROCS value and every entry is emitted as name/cpu=N — the form
// used to measure how the `_par` kernels scale with cores. Without it,
// entries carry bare names at the ambient GOMAXPROCS (the form the CI
// gate compares).
//
// With -baseline, the current numbers are compared entry by entry against
// the committed report: a kernel slower (or allocation-heavier) than
// max-regress times the baseline fails the run. The threshold is
// deliberately generous — CI machines are noisy; the gate catches
// order-of-magnitude rot (a lost pool, a reintroduced boxing heap), not
// percentage drift.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"netplace/internal/benchkit"
	"netplace/internal/core"
	"netplace/internal/metric"
	"netplace/internal/service"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

// metricJSON is one kernel's measured costs.
type metricJSON struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// reportJSON is the on-disk report. Pre carries the pre-optimisation
// numbers measured when the trajectory file was first committed; the
// comparison gate only reads Benchmarks.
type reportJSON struct {
	Schema     string                `json:"schema"`
	Note       string                `json:"note,omitempty"`
	Benchmarks map[string]metricJSON `json:"benchmarks"`
	Pre        map[string]metricJSON `json:"pre,omitempty"`
}

// residentInstance is the shared 2500-node clustered-demand fixture —
// internal/benchkit guarantees bench_test.go measures the same workload.
func residentInstance(objects int) *core.Instance {
	return benchkit.ResidentInstance(objects)
}

var sink float64

// kernel is one measured benchmark: a stable name, its size tier tag (the
// -sizes filter key), and the body.
type kernel struct {
	name string
	size string
	fn   func(b *testing.B)
}

// kernels enumerates the measured benchmarks in report order. Each entry
// builds its own fixture outside the timed loop. The _par variants run
// the same workloads with intra-solve parallelism on all cores; their
// outputs are byte-identical to the serial kernels', only the schedule
// differs. 50k serial kernels pin Parallel=1 explicitly — at that size an
// unset knob resolves parallel under the auto policy — while the 2500
// kernels leave it unset, tracking the auto default.
func kernels() []kernel {
	lazyOpts := core.Options{Metric: core.MetricLazy, MetricRows: 64}
	parOpts := core.Options{Metric: core.MetricLazy, MetricRows: 64, Parallel: -1}
	serialOpts := core.Options{Metric: core.MetricLazy, MetricRows: 64, Parallel: 1}
	benchSolve := func(mk func(int) *core.Instance, objects int, opts core.Options) func(b *testing.B) {
		return func(b *testing.B) {
			in := mk(objects)
			core.Approximate(in, opts) // warm oracle and pools
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := core.Approximate(in, opts)
				sink += float64(len(p.Copies[0]))
			}
		}
	}
	return []kernel{
		{"resident_solve_2500_lazy", "2500", benchSolve(residentInstance, 8, lazyOpts)},
		{"resident_solve_2500_lazy_par", "2500", benchSolve(residentInstance, 8, parOpts)},
		{"resident_objectcost_2500_lazy", "2500", func(b *testing.B) {
			in := residentInstance(1)
			p := core.Approximate(in, lazyOpts)
			obj := &in.Objects[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += in.ObjectCost(obj, p.Copies[0]).Total()
			}
		}},
		{"resident_nearestof_2500_lazy", "2500", func(b *testing.B) {
			in := residentInstance(1)
			p := core.Approximate(in, lazyOpts)
			o := in.Metric()
			dst := make([]float64, in.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += metric.NearestOfInto(o, p.Copies[0], dst)[0]
			}
		}},
		{"lazy_row_hit_1024", "2500", func(b *testing.B) {
			in := residentInstance(1)
			in.UseMetric(core.MetricLazy, 1024)
			o := in.Metric()
			for u := 0; u < 1024; u++ {
				o.Row(u)
			}
			const working = 32
			for u := 1024 - working; u < 1024; u++ {
				o.Row(u)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += o.Row(1024 - working + i%working)[0]
			}
		}},
		{"whatif_incremental_2500", "2500", func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2}, residentInstance(8))
		}},
		{"whatif_incremental_2500_par", "2500", func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2, Parallel: -1}, residentInstance(8))
		}},
		{"whatif_full_2500", "2500", func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2, DisableIncremental: true}, residentInstance(8))
		}},
		// One op = one full streaming epoch on a resident 2500-node
		// instance: 512 Observe calls (accounting against the warm lazy
		// oracle) plus the epoch close (estimate roll, incremental
		// re-solve of changed objects, hysteresis).
		{"stream_epoch_2500", "2500", benchStreamEpoch(lazyOpts, residentInstance, 8)},
		{"stream_epoch_2500_par", "2500", benchStreamEpoch(parOpts, residentInstance, 8)},
		// The 50k tier: the sparse-grid acceptance topology, where one
		// object's solve is heavy enough that intra-solve sharding and
		// batched row construction must beat serial (the margin the
		// bench-large CI job gates with -gate-par).
		{"solve_50k_lazy", "50k", benchSolve(benchkit.LargeInstance, 2, serialOpts)},
		{"solve_50k_lazy_par", "50k", benchSolve(benchkit.LargeInstance, 2, parOpts)},
		{"whatif_50k", "50k", func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2, Parallel: 1}, benchkit.LargeInstance(2))
		}},
		{"whatif_50k_par", "50k", func(b *testing.B) {
			benchWhatIf(b, service.Config{Workers: 2, Parallel: -1}, benchkit.LargeInstance(2))
		}},
		{"stream_epoch_50k", "50k", benchStreamEpochLarge(serialOpts, 2)},
		{"stream_epoch_50k_par", "50k", benchStreamEpochLarge(parOpts, 2)},
	}
}

// benchStreamEpoch builds the streaming-epoch kernel over the given
// fixture with the given per-object solve options.
func benchStreamEpoch(opts core.Options, mk func(int) *core.Instance, objects int) func(b *testing.B) {
	return func(b *testing.B) {
		in := mk(objects)
		rng := rand.New(rand.NewSource(7))
		const epoch = 512
		seq := workload.Sequence(in.Objects, epoch*64, rng)
		eng := stream.New(in, stream.Config{Epoch: epoch, Window: 4, Solve: opts})
		feed := func(k int) {
			for i := 0; i < epoch; i++ {
				if _, err := eng.Observe(seq[(k*epoch+i)%len(seq)]); err != nil {
					b.Fatal(err)
				}
			}
		}
		feed(0) // warm: first epoch close adopts the initial placement
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feed(i + 1)
		}
	}
}

// benchStreamEpochLarge builds the 50k streaming-epoch kernel: one op is
// one full epoch of drifting read-only load — fresh uniform requesters
// every epoch, so the estimates always change and every close re-solves
// both objects through the sharded solve pipeline. Reads-only keeps the
// op cost stable: a write's multicast over the ~400-copy large placement
// rebuilds hundreds of distance rows, so op timing would hinge on whether
// the epoch happened to draw one of the fixture's rare writers; the
// multicast price is measured by the solve and what-if kernels instead.
func benchStreamEpochLarge(opts core.Options, objects int) func(b *testing.B) {
	return func(b *testing.B) {
		in := benchkit.LargeInstance(objects)
		rng := rand.New(rand.NewSource(7))
		const epoch = 512
		eng := stream.New(in, stream.Config{Epoch: epoch, Window: 4, Solve: opts})
		feed := func() {
			for i := 0; i < epoch; i++ {
				r := workload.Request{Obj: i % objects, V: rng.Intn(in.N())}
				if _, err := eng.Observe(r); err != nil {
					b.Fatal(err)
				}
			}
		}
		feed() // warm: the first close adopts the initial solved placement
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			feed()
		}
	}
}

// benchWhatIf measures one-object-changed scenarios against a resident
// instance: the incremental path re-solves 1 object and splices the rest;
// the full path re-solves every object each time.
func benchWhatIf(b *testing.B, cfg service.Config, in *core.Instance) {
	srv := service.New(cfg)
	info, _ := srv.Engine().Registry().Add("bench", in)
	ctx := context.Background()
	reads := make([]int64, in.N())
	for v := range reads {
		reads[v] = int64(v % 7)
	}
	sc := service.Scenario{Objects: []service.ObjectPatch{{Name: in.Objects[0].Name, Reads: reads}}}
	opts := service.SolveOptions{Metric: "lazy", MetricRows: 64}
	// Warm the base solve so the loop measures scenario cost, not setup.
	if _, err := srv.Engine().Scenario(ctx, info.ID, opts, sc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := srv.Engine().Scenario(ctx, info.ID, opts, sc)
		if err != nil {
			b.Fatal(err)
		}
		sink += res.Breakdown.Total
	}
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	baseline := flag.String("baseline", "", "compare against this committed report; regressions fail the run")
	maxRegress := flag.Float64("max-regress", 8, "fail when a kernel exceeds this multiple of the baseline")
	note := flag.String("note", "", "free-form note recorded in the report")
	cpus := flag.String("cpu", "", "comma-separated GOMAXPROCS values; kernels run once per value as name/cpu=N")
	sizes := flag.String("sizes", "", "comma-separated size tiers to run (e.g. 2500,50k); empty runs all")
	names := flag.String("kernels", "", "comma-separated kernel-name substrings to run; empty runs all")
	budget := flag.Duration("budget", 0, "stop starting new kernels once this wall-clock budget is spent (0: unlimited)")
	gatePar := flag.Float64("gate-par", 0, "require every measured X_par kernel to beat its serial X by this factor (0: no gate)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measured kernels here")
	flag.Parse()

	cpuList, err := parseCPUList(*cpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(cpuList) > 0 && *baseline != "" {
		// Per-cpu entries are suffixed name/cpu=N and would never match a
		// baseline's bare kernel names; fail before the expensive runs.
		fmt.Fprintln(os.Stderr, "benchreport: -cpu and -baseline are mutually exclusive (per-cpu entries do not match baseline kernel names)")
		os.Exit(1)
	}

	selected := selectKernels(*sizes, *names)
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no kernels match the -sizes/-kernels filters")
		os.Exit(1)
	}

	// The auto-parallel threshold is part of the measurement conditions:
	// it decides which kernels' unset knobs resolve parallel.
	noteText := fmt.Sprintf("auto_parallel_min_nodes=%d", core.AutoParallelMinNodes)
	if *note != "" {
		noteText = *note + "; " + noteText
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	start := time.Now()
	rep := reportJSON{Schema: "netplace-bench/v1", Note: noteText, Benchmarks: map[string]metricJSON{}}
	measured := map[string]bool{}
	measure := func(suffix string) {
		for _, k := range selected {
			if *budget > 0 && time.Since(start) > *budget {
				fmt.Fprintf(os.Stderr, "benchreport: wall-clock budget %v spent; skipping %s and later kernels\n", *budget, k.name+suffix)
				return
			}
			r := testing.Benchmark(k.fn)
			name := k.name + suffix
			measured[name] = true
			rep.Benchmarks[name] = metricJSON{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			fmt.Fprintf(os.Stderr, "%-38s %14.0f ns/op %10d B/op %8d allocs/op\n",
				name, rep.Benchmarks[name].NsPerOp, rep.Benchmarks[name].BytesPerOp, rep.Benchmarks[name].AllocsPerOp)
		}
	}
	if len(cpuList) == 0 {
		measure("")
	} else {
		prev := runtime.GOMAXPROCS(0)
		for _, c := range cpuList {
			runtime.GOMAXPROCS(c)
			measure(fmt.Sprintf("/cpu=%d", c))
		}
		runtime.GOMAXPROCS(prev)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}

	failed := false
	if *baseline != "" {
		if failures := compare(rep, *baseline, *maxRegress, measured); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "REGRESSION:", f)
			}
			failed = true
		} else {
			fmt.Fprintln(os.Stderr, "benchreport: within", *maxRegress, "x of baseline", *baseline)
		}
	}
	if *gatePar > 0 {
		if failures := gateParallel(rep, *gatePar); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "PARALLEL GATE:", f)
			}
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchreport: every _par kernel >= %.2fx its serial counterpart\n", *gatePar)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// selectKernels applies the -sizes and -kernels filters to the kernel
// list, preserving report order.
func selectKernels(sizes, names string) []kernel {
	sizeSet := map[string]bool{}
	for _, s := range strings.Split(sizes, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sizeSet[s] = true
		}
	}
	var subs []string
	for _, s := range strings.Split(names, ",") {
		if s = strings.TrimSpace(s); s != "" {
			subs = append(subs, s)
		}
	}
	var out []kernel
	for _, k := range kernels() {
		if len(sizeSet) > 0 && !sizeSet[k.size] {
			continue
		}
		if len(subs) > 0 {
			hit := false
			for _, sub := range subs {
				if strings.Contains(k.name, sub) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		out = append(out, k)
	}
	return out
}

// gateParallel checks that every measured X_par kernel beat its measured
// serial counterpart X by at least ratio. Pairs whose serial half was
// filtered out or skipped are ignored.
func gateParallel(rep reportJSON, ratio float64) []string {
	var failures []string
	for name, par := range rep.Benchmarks {
		base, ok := strings.CutSuffix(name, "_par")
		if !ok {
			continue
		}
		serial, ok := rep.Benchmarks[base]
		if !ok || par.NsPerOp <= 0 {
			continue
		}
		if got := serial.NsPerOp / par.NsPerOp; got < ratio {
			failures = append(failures, fmt.Sprintf("%s: %.2fx over %s, want >= %.2fx (%.0f vs %.0f ns/op)",
				name, got, base, ratio, par.NsPerOp, serial.NsPerOp))
		}
	}
	return failures
}

// parseCPUList parses the -cpu flag: a comma-separated list of positive
// GOMAXPROCS values, empty meaning "ambient only".
func parseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad -cpu entry %q (want positive integers)", part)
		}
		out = append(out, c)
	}
	return out, nil
}

// compare checks the current report against a committed baseline. Small
// absolute floors keep sub-millisecond kernels from tripping the gate on
// scheduler noise. Baseline entries outside the measured set (filtered
// out by -sizes/-kernels or skipped under -budget) are not compared —
// the filters select the gate's scope.
func compare(cur reportJSON, path string, maxRegress float64, measured map[string]bool) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("cannot read baseline: %v", err)}
	}
	var base reportJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return []string{fmt.Sprintf("cannot parse baseline: %v", err)}
	}
	var failures []string
	for name, b := range base.Benchmarks {
		if !measured[name] {
			continue
		}
		c := cur.Benchmarks[name]
		if c.NsPerOp > b.NsPerOp*maxRegress && c.NsPerOp > 1e6 {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (>%.0fx)",
				name, c.NsPerOp, b.NsPerOp, maxRegress))
		}
		if float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*maxRegress && c.AllocsPerOp > 512 {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op vs baseline %d (>%.0fx)",
				name, c.AllocsPerOp, b.AllocsPerOp, maxRegress))
		}
	}
	return failures
}
