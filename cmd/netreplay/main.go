// Command netreplay replays a request trace against the placement
// strategies and reports per-epoch costs — the evaluation harness for the
// streaming adaptive engine.
//
// In-process mode (the default) runs all three strategies on one trace
// under identical accounting and prints a per-epoch cost table plus
// totals:
//
//   - static: the paper's algorithm placed once from the instance's
//     frequency tables (clairvoyant);
//   - online: the counter-based dynamic strategy (internal/online);
//   - adaptive: the streaming engine (internal/stream) — windowed /
//     EWMA estimates, epoch re-solve, hysteresis.
//
// Server mode (-server URL) uploads the instance to a running netplaced,
// opens a streaming session, streams the trace in sequence-numbered
// batches, and reports the server-side session stats and final
// placement. Transient faults — connection resets, 429 sheds, a
// restarting server — are absorbed automatically: batches carry
// client sequence numbers the server deduplicates durably, so the
// client retries with backoff (honoring Retry-After) without ever
// double-applying, and after the retry budget is exhausted it re-syncs
// against the session's acknowledged event count and continues. Only
// when the server stays unreachable does the replay exit non-zero,
// naming the failed batch and the acknowledged prefix; against a
// netplaced running with -data-dir the session survives, and
// -resume <session-id> picks the replay up where it stopped by skipping
// the trace prefix the session already ingested. See docs/resilience.md.
//
// Cluster mode (-peers url1,url2,...) is server mode against a sharded
// netplaced cluster: the replay routes the upload, the session, and
// every batch to the replica owning the instance on the consistent-hash
// ring (see docs/cluster.md), with the same retry/re-sync behavior —
// a replica restarting mid-replay is absorbed transparently.
//
// Usage:
//
//	netreplay -instance inst.json -trace trace.jsonl [-epoch 256]
//	          [-window 4] [-alpha 0] [-horizon 0] [-payback 2]
//	          [-migration-factor 1] [-json] [-server http://host:8723]
//	          [-peers http://h1:8723,http://h2:8723]
//	          [-resume session-id]
//
// The trace is JSONL, one event per line (see internal/stream.EventJSON):
//
//	{"obj":"obj-a","node":5}
//	{"obj":"obj-a","node":0,"write":true,"count":3}
//
// A tiny bundled example lives under cmd/netreplay/testdata/ and is
// exercised by CI:
//
//	go run ./cmd/netreplay -instance cmd/netreplay/testdata/instance.json \
//	    -trace cmd/netreplay/testdata/trace.jsonl -epoch 100
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"netplace/internal/cluster"
	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/service"
	"netplace/internal/stream"
	"netplace/internal/workload"
)

func main() {
	var (
		instPath  = flag.String("instance", "", "instance JSON file (required)")
		tracePath = flag.String("trace", "", "JSONL trace file (required)")
		epoch     = flag.Int("epoch", 0, "events per re-placement epoch (0: stream default)")
		window    = flag.Int("window", 0, "sliding-window width in epochs (0: stream default)")
		alpha     = flag.Float64("alpha", 0, "EWMA weight per epoch (0: sliding window)")
		horizon   = flag.Int("horizon", 0, "storage amortisation horizon in events (0: window span)")
		payback   = flag.Float64("payback", 0, "epochs a move's saving must pay back its migration (0: default)")
		migf      = flag.Float64("migration-factor", 0, "hysteresis migration price factor (0: default 1, negative: disabled)")
		asJSON    = flag.Bool("json", false, "emit the report as JSON instead of a table")
		server    = flag.String("server", "", "replay against a running netplaced at this base URL instead of in-process")
		peers     = flag.String("peers", "", "comma-separated replica base URLs of a sharded netplaced cluster; replaces -server (see docs/cluster.md)")
		resume    = flag.String("resume", "", "server mode: resume this session id, skipping the trace prefix it already ingested")
	)
	flag.Parse()
	if *instPath == "" || *tracePath == "" {
		fmt.Fprintln(os.Stderr, "netreplay: -instance and -trace are required")
		flag.Usage()
		os.Exit(2)
	}
	if *server != "" && *peers != "" {
		fmt.Fprintln(os.Stderr, "netreplay: -server and -peers are mutually exclusive")
		os.Exit(2)
	}
	if *resume != "" && *server == "" && *peers == "" {
		fmt.Fprintln(os.Stderr, "netreplay: -resume only applies to server mode (-server or -peers)")
		os.Exit(2)
	}

	in, err := readInstance(*instPath)
	if err != nil {
		fatal(err)
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	seq, err := stream.ReadTrace(tf, in)
	tf.Close()
	if err != nil {
		fatal(err)
	}
	if len(seq) == 0 {
		fatal(fmt.Errorf("trace %s holds no events", *tracePath))
	}

	cfg := stream.Config{
		Epoch: *epoch, Window: *window, Alpha: *alpha, Horizon: *horizon,
		Payback: *payback, MigrationFactor: *migf,
	}
	if *server != "" || *peers != "" {
		c, err := buildClient(*server, *peers)
		if err != nil {
			fatal(err)
		}
		if err := replayServer(c, in, seq, cfg, *resume, *asJSON); err != nil {
			fatal(err)
		}
		return
	}

	cmp := stream.Compare(in, seq, cfg)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			fatal(err)
		}
		return
	}
	printComparison(cmp)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netreplay:", err)
	os.Exit(1)
}

func readInstance(path string) (*core.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return encode.ReadInstance(f)
}

// printComparison renders the three strategies' per-epoch costs and
// totals as an aligned table.
func printComparison(cmp stream.Comparison) {
	fmt.Printf("trace: %d events, %d epochs of %d\n\n", cmp.Events, cmp.Epochs, cmp.EpochEvents)
	fmt.Printf("%6s %12s %12s %12s\n", "epoch", "static", "online", "adaptive")
	for k := 0; k < cmp.Epochs; k++ {
		fmt.Printf("%6d %12.1f %12.1f %12.1f\n",
			k+1, cmp.Static.PerEpoch[k], cmp.Online.PerEpoch[k], cmp.Adaptive.PerEpoch[k])
	}
	fmt.Println()
	row := func(sc stream.StrategyCost, extra string) {
		fmt.Printf("%-9s total %12.1f  (transmission %.1f, storage %.1f, migration %.1f)%s\n",
			sc.Name, sc.Total(), sc.Transmission, sc.Storage, sc.Migration, extra)
	}
	row(cmp.Static, "")
	row(cmp.Online, fmt.Sprintf("  repl/drops %d/%d", cmp.Online.Replications, cmp.Online.Drops))
	row(cmp.Adaptive, fmt.Sprintf("  moves/resolves %d/%d", cmp.Adaptive.Moves, cmp.Adaptive.Resolves))
	if s, a := cmp.Static.Total(), cmp.Adaptive.Total(); s > 0 {
		fmt.Printf("\nadaptive/static %.3f, online/static %.3f\n", a/s, cmp.Online.Total()/s)
	}
}

// serverBatch is the event batch size streamed per request in server mode.
const serverBatch = 512

// maxBatchFailures bounds consecutive re-sync rounds after the retry
// policy is exhausted before the replay gives up and points at -resume.
const maxBatchFailures = 3

// replayClient is the slice of the client surface the server-mode
// replay needs. Both service.Client (-server, one netplaced) and
// cluster.ShardedClient (-peers, a sharded cluster where every call is
// routed to the owning replica) satisfy it with identical semantics,
// so the replay loop — including re-sync after an exhausted retry
// budget — is oblivious to which deployment it streams into.
type replayClient interface {
	Upload(ctx context.Context, name string, in *core.Instance) (service.UploadResponse, error)
	Session(ctx context.Context, id string) (service.SessionInfo, error)
	OpenSession(ctx context.Context, instanceID string, cfg service.SessionConfig) (service.SessionInfo, error)
	SessionEventsSeq(ctx context.Context, id string, seq int64, events []service.SessionEvent) (service.SessionEventsResponse, error)
	SessionFlush(ctx context.Context, id string) (service.SessionEventsResponse, error)
	SessionPlacement(ctx context.Context, id string) (service.SessionPlacementResponse, error)
	CloseSession(ctx context.Context, id string) error
}

// buildClient assembles the replay client: a plain service.Client for
// -server, a cluster.ShardedClient for -peers.
func buildClient(server, peers string) (replayClient, error) {
	policy := service.DefaultRetryPolicy()
	if server != "" {
		c := service.NewClient(server, nil)
		c.SetRetryPolicy(policy)
		return c, nil
	}
	var urls []string
	for _, u := range strings.Split(peers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	sc, err := cluster.NewShardedClient(urls, nil)
	if err != nil {
		return nil, err
	}
	sc.SetRetryPolicy(policy)
	return sc, nil
}

// replayServer streams the trace into a netplaced session and reports
// the server-side accounting. Batches carry sequence numbers (batch
// index + 1 — offsets are batch-aligned because ingestion is
// all-or-nothing), so the client's retry policy can safely re-send a
// batch whose response was lost: the server recognizes the sequence and
// acknowledges without re-applying. With resume non-empty it continues
// an existing session instead of opening one, skipping the trace prefix
// the session already ingested (always a batch boundary of a prior
// replay, for the same all-or-nothing reason).
func replayServer(c replayClient, in *core.Instance, seq []workload.Request, cfg stream.Config, resume string, asJSON bool) error {
	ctx := context.Background()
	up, err := c.Upload(ctx, "netreplay", in)
	if err != nil {
		return err
	}
	var sess service.SessionInfo
	done := 0
	if resume != "" {
		sess, err = c.Session(ctx, resume)
		if err != nil {
			return fmt.Errorf("looking up session %s to resume: %w", resume, err)
		}
		if sess.InstanceID != up.ID {
			return fmt.Errorf("session %s streams instance %s, not this instance (%s)", resume, sess.InstanceID, up.ID)
		}
		done = sess.Stats.Events
		if done > len(seq) {
			return fmt.Errorf("session %s has already ingested %d events; the trace holds only %d", resume, done, len(seq))
		}
		fmt.Fprintf(os.Stderr, "netreplay: resuming session %s at event %d of %d\n", resume, done, len(seq))
	} else {
		sess, err = c.OpenSession(ctx, up.ID, service.SessionConfig{
			Epoch: cfg.Epoch, Window: cfg.Window, Alpha: cfg.Alpha,
			Horizon: cfg.Horizon, Payback: cfg.Payback, MigrationFactor: cfg.MigrationFactor,
		})
		if err != nil {
			return err
		}
	}
	names := make([]string, len(in.Objects))
	for i := range in.Objects {
		names[i] = encode.ObjectName(&in.Objects[i], i)
	}
	var epochs []service.SessionEpochJSON
	failures := 0
	for start := done; start < len(seq); {
		end := start + serverBatch
		if end > len(seq) {
			end = len(seq)
		}
		batch := make([]service.SessionEvent, 0, end-start)
		for _, r := range seq[start:end] {
			batch = append(batch, service.SessionEvent{Obj: names[r.Obj], Node: r.V, Write: r.Write})
		}
		resp, err := c.SessionEventsSeq(ctx, sess.SessionID, int64(start/serverBatch)+1, batch)
		if err != nil {
			// The retry policy is already exhausted. Re-sync against the
			// session's acknowledged event count — against a durable
			// netplaced it survives a restart — and continue from there.
			if failures++; failures < maxBatchFailures {
				if info, ierr := c.Session(ctx, sess.SessionID); ierr == nil {
					fmt.Fprintf(os.Stderr, "netreplay: re-syncing at event %d of %d after: %v\n",
						info.Stats.Events, len(seq), err)
					start = info.Stats.Events
					continue
				}
			}
			// Partial replay: name the failed batch and what the server had
			// acknowledged, and point at the resume path — against a durable
			// netplaced the session survives with exactly `start` events.
			return fmt.Errorf("streaming events [%d,%d) of %d failed after %d acknowledged: %w (retry with -resume %s)",
				start, end, len(seq), start, err, sess.SessionID)
		}
		failures = 0
		if resp.Deduplicated {
			// A prior incarnation's batch the server already holds; its
			// epoch reports were delivered to that incarnation.
			fmt.Fprintf(os.Stderr, "netreplay: batch at event %d already ingested, skipping\n", start)
		} else {
			epochs = append(epochs, resp.Epochs...)
		}
		start = end
	}
	// Close the final partial epoch so the server-side accounting matches
	// the in-process harness on the same trace.
	fl, err := c.SessionFlush(ctx, sess.SessionID)
	if err != nil {
		return err
	}
	epochs = append(epochs, fl.Epochs...)
	pl, err := c.SessionPlacement(ctx, sess.SessionID)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Session   service.SessionInfo              `json:"session"`
			Epochs    []service.SessionEpochJSON       `json:"epochs"`
			Placement service.SessionPlacementResponse `json:"placement"`
		}{sess, epochs, pl})
	}
	fmt.Printf("session %s over instance %s: %d events, %d epochs\n",
		sess.SessionID, up.ID, pl.Stats.Events, pl.Stats.Epochs)
	fmt.Printf("%6s %8s %10s %8s %8s %14s %12s\n",
		"epoch", "events", "resolved", "moved", "rejected", "transmission", "migration")
	for _, ep := range epochs {
		fmt.Printf("%6d %8d %10d %8d %8d %14.1f %12.1f\n",
			ep.Epoch, ep.Events, ep.Resolved, ep.Moved, ep.Rejected, ep.Transmission, ep.Migration)
	}
	fmt.Printf("\ntotal %.1f (transmission %.1f, storage %.1f, migration %.1f), moves %d, resolves %d\n",
		pl.Stats.Total, pl.Stats.Transmission, pl.Stats.Storage, pl.Stats.Migration,
		pl.Stats.Moves, pl.Stats.Resolves)
	if pl.Breakdown != nil {
		fmt.Printf("final placement static cost: %.1f\n", pl.Breakdown.Total)
	}
	// A retried close may race a completed one: the session being gone
	// is exactly the goal, so a 404 is success here.
	if err := c.CloseSession(ctx, sess.SessionID); err != nil {
		var ae *service.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
			return err
		}
	}
	return nil
}
