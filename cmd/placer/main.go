// Command placer solves a static data management instance and reports the
// placement and its cost breakdown.
//
// Usage:
//
//	placer -in instance.json [-algo approx|tree|single|full|greedy|fl-only]
//	       [-fl local-search|jain-vazirani|mettu-plaxton] [-o placement.json]
//	       [-simulate]
//
// algo=tree runs the exact Section 3 dynamic program and requires a tree
// network; all other algorithms work on arbitrary connected networks.
// -simulate replays the workload through the message-level simulator and
// prints the metered bill next to the analytic cost.
//
// Every failure — including a failed -o or -dot write and a simulation
// error mid-replay — exits non-zero; a zero exit means the full report and
// all requested outputs landed.
package main

import (
	"flag"
	"fmt"
	"os"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/facility"
	"netplace/internal/netsim"
	"netplace/internal/solver"
	"netplace/internal/tree"
	"netplace/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placer:", err)
		os.Exit(1)
	}
}

// run executes the whole CLI; every error propagates here so main is the
// only place that decides the exit code.
func run() error {
	var (
		inPath   = flag.String("in", "", "instance JSON (required)")
		algo     = flag.String("algo", "approx", "approx|tree|optimal|single|full|greedy|fl-only")
		flName   = flag.String("fl", "local-search", "phase-1 facility location algorithm")
		outPath  = flag.String("o", "", "write placement JSON here")
		simulate = flag.Bool("simulate", false, "replay the workload in the message simulator")
		dotPath  = flag.String("dot", "", "write a Graphviz rendering (copies highlighted) here")
	)
	flag.Parse()
	if *inPath == "" {
		return fmt.Errorf("-in is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	in, err := encode.ReadInstance(f)
	f.Close()
	if err != nil {
		return err
	}

	flSolvers := map[string]facility.Solver{
		"local-search":  facility.LocalSearch,
		"jain-vazirani": facility.JainVazirani,
		"mettu-plaxton": facility.MettuPlaxton,
		"greedy":        facility.Greedy,
	}
	fl, ok := flSolvers[*flName]
	if !ok {
		return fmt.Errorf("unknown facility location algorithm %q", *flName)
	}

	var p core.Placement
	switch *algo {
	case "approx":
		p = core.Approximate(in, core.Options{FL: fl})
	case "tree":
		if !in.G.IsTree() {
			return fmt.Errorf("algo=tree requires a tree network (got %d nodes, %d edges)", in.G.N(), in.G.M())
		}
		t := tree.Build(in.G, 0)
		p = core.Placement{Copies: make([][]int, len(in.Objects))}
		for i := range in.Objects {
			obj := &in.Objects[i]
			copies, cost := t.Solve(in.Storage, obj.Reads, obj.Writes)
			p.Copies[i] = copies
			fmt.Printf("object %-12s optimal tree cost %.3f\n", name(in, i), cost)
		}
	case "optimal":
		if in.G.N() > 18 {
			return fmt.Errorf("algo=optimal enumerates all copy sets; limited to 18 nodes (got %d)", in.G.N())
		}
		sols := solver.OptimalRestricted(in)
		p = core.Placement{Copies: make([][]int, len(in.Objects))}
		for i, s := range sols {
			p.Copies[i] = s.Copies
		}
	case "single":
		p = core.SingleBest(in)
	case "full":
		p = core.FullReplication(in)
	case "greedy":
		p = core.GreedyAdd(in)
	case "fl-only":
		p = core.FacilityOnly(in, fl)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	for i := range in.Objects {
		b := in.ObjectCost(&in.Objects[i], p.Copies[i])
		fmt.Printf("object %-12s copies %-3d storage %10.3f read %10.3f update %10.3f total %10.3f\n",
			name(in, i), len(p.Copies[i]), b.Storage, b.Read, b.Update, b.Total())
	}
	total := in.Cost(p)
	fmt.Printf("TOTAL  %-12s copies %-3d storage %10.3f read %10.3f update %10.3f total %10.3f\n",
		"", countCopies(p), total.Storage, total.Read, total.Update, total.Total())

	if *simulate {
		sim, err := netsim.New(in, p)
		if err != nil {
			return fmt.Errorf("simulate: %w", err)
		}
		st := sim.Run()
		fmt.Printf("simulated: %d requests, %d messages, transmission %.3f, storage %.3f, total %.3f (analytic %.3f)\n",
			st.Requests, st.Messages, st.TransmissionCost, st.StorageCost, st.Total(), total.Total())
	}

	if *outPath != "" {
		if err := writeFile(*outPath, func(f *os.File) error {
			return encode.WritePlacement(f, in, p)
		}); err != nil {
			return fmt.Errorf("-o %s: %w", *outPath, err)
		}
	}

	if *dotPath != "" {
		// highlight the union of all objects' copies
		seen := map[int]bool{}
		var copies []int
		for _, set := range p.Copies {
			for _, v := range set {
				if !seen[v] {
					seen[v] = true
					copies = append(copies, v)
				}
			}
		}
		if err := writeFile(*dotPath, func(f *os.File) error {
			return viz.WriteDot(f, in.G, viz.DotOptions{Copies: copies, Name: *algo})
		}); err != nil {
			return fmt.Errorf("-dot %s: %w", *dotPath, err)
		}
	}
	return nil
}

// writeFile creates path, runs write against it, and closes it, reporting
// the first error — including the Close error, which is where a full disk
// or quota failure surfaces after buffered writes.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func name(in *core.Instance, i int) string {
	if in.Objects[i].Name != "" {
		return in.Objects[i].Name
	}
	return fmt.Sprintf("object-%d", i)
}

func countCopies(p core.Placement) int {
	n := 0
	for _, c := range p.Copies {
		n += len(c)
	}
	return n
}
