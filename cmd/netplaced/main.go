// Command netplaced serves the netplace placement algorithms over
// HTTP/JSON: upload an instance once, then query placements, cost
// breakdowns, what-if variants, and message-level simulations repeatedly
// without re-parsing or re-solving — identical solves are deduplicated
// in flight and served from a result cache.
//
// Usage:
//
//	netplaced [-addr :8723] [-mem-budget bytes] [-cache entries]
//	          [-workers n] [-parallel n] [-solve-timeout 5m]
//	          [-max-queue n] [-data-dir dir] [-no-sync]
//	          [-fsync-interval 0]
//	          [-cluster url1,url2,...] [-self url] [-peer-cache]
//	          [-no-forward] [-peer-timeout 2s] [-probe-interval 1s]
//	          [-breaker-threshold 3] [-breaker-backoff 250ms]
//	          [-successor url]
//	netplaced -drain-peer url -cluster url1,url2,...
//
// With -cluster the server is one replica of a sharded netplaced
// cluster (see docs/cluster.md): -cluster lists every replica's base
// URL and -self this replica's own. Instances and their sessions are
// sharded across the replicas by content hash on a consistent-hash
// ring; requests for keys another replica owns are transparently
// forwarded to it (with an X-Netplace-Forwarded hop guard), so any
// replica is a valid entry point — -no-forward disables the forwarding
// and leaves each replica answering only what it holds, for sharded
// clients that route themselves. -peer-cache additionally lets a solve
// that misses the local result cache probe the peers' caches before
// running the solver, collapsing identical solves cluster-wide;
// /statz?cluster=1 merges every replica's counters into one view.
//
// The cluster is self-healing: every replica tracks its peers with
// per-peer circuit breakers fed by a background /readyz prober (every
// -probe-interval; negative disables) and by passive traffic errors.
// After -breaker-threshold consecutive failures a peer's breaker opens
// and requests that need it fail fast with 503, an
// X-Netplace-Replica-Down header, and a Retry-After matching the
// breaker's reopen-probe backoff (-breaker-backoff, doubled per failed
// probe). Each replica also pushes a read-only snapshot of every
// instance it owns to its ring successor (the next member in sorted
// -cluster order, overridable with -successor), so stale-tolerant
// reads — solve, cost, and instance info carrying
// X-Netplace-Allow-Stale — fail over to the successor while the owner
// is partitioned; writes surface the typed 503 until it heals.
// -drain-peer gracefully retires a replica instead: the target drains
// (final snapshots, WAL flush), every surviving replica drops it from
// the ring via POST /v1/cluster/drain, and its instances are re-homed
// across the survivors. See docs/cluster.md ("Failure modes &
// membership").
//
// With -data-dir the server is durable: uploaded instances are
// snapshotted at registration and every streaming session keeps a
// snapshot plus an event write-ahead log under the directory, so a
// restart (or crash) recovers instances and sessions to exactly the
// state every acknowledged request left them in — see
// docs/persistence.md. -no-sync trades fsync durability against an OS
// crash for ingest throughput; a plain process crash still loses
// nothing. -fsync-interval is the middle ground: group-commit, fsyncing
// the session WAL at most once per interval (0, the default, fsyncs
// every append), bounding what an OS crash can lose to one interval of
// acked events — a loss the durable sequence watermark lets sequenced
// clients detect and replay exactly once. Without -data-dir the server
// is purely in-memory.
//
// The server is overload-resilient: -max-queue bounds how many solve
// and what-if requests may wait for a worker (default 256, negative
// unbounded); excess requests are shed immediately with 429 and a
// Retry-After hint instead of queueing without bound. Clients can
// propagate budgets via the X-Netplace-Deadline header and opt into
// degraded stale reads under overload with X-Netplace-Allow-Stale.
// GET /readyz answers 503 from the moment shutdown begins, so load
// balancers rotate the instance out while in-flight work completes; on
// SIGTERM the server drains — after in-flight requests finish, every
// live session is snapshotted so the next start recovers with zero WAL
// replay. See docs/resilience.md.
//
// -workers bounds how many solver runs execute at once; -parallel sets
// the default intra-solve parallelism of each run (how many goroutines
// cooperate on a single object's solve — the lever for incremental
// what-if and session re-solves, which handle one object at a time).
// 0 selects the size-aware auto policy: serial on instances below the
// auto-parallel threshold (where sharding costs more than the scans),
// all cores at or above it. 1 pins serial, negative uses all cores
// unconditionally; a request's own "parallel" option overrides the
// default per solve. The per-instance resolved values are reported at
// /statz as effective_parallel, alongside the threshold as
// auto_parallel_min_nodes.
//
// Endpoints (see internal/service.Server for bodies):
//
//	POST   /instances                 upload an instance (JSON wire format)
//	GET    /instances                 list resident instances
//	GET    /instances/{id}            instance record
//	DELETE /instances/{id}            drop an instance
//	POST   /instances/{id}/solve      solve (approx, tree, optimal, baselines)
//	POST   /instances/{id}/whatif     batched options variants or demand
//	                                  scenarios (incremental re-solve)
//	POST   /instances/{id}/cost       price a client-supplied placement
//	POST   /instances/{id}/simulate   message-level replay of the workload
//	GET    /instances/{id}/export     instance snapshot (replication/drain)
//	POST   /v1/sessions               open a streaming adaptive session
//	GET    /v1/sessions               list open sessions
//	GET    /v1/sessions/{id}          session record + stats
//	DELETE /v1/sessions/{id}          close a session
//	POST   /v1/sessions/{id}/events   stream request events (epoch re-solve)
//	POST   /v1/sessions/{id}/flush    close the open partial epoch
//	GET    /v1/sessions/{id}/placement  current adaptive placement
//	PUT    /v1/replica/instances/{id} push a replica snapshot (internal)
//	DELETE /v1/replica/instances/{id} drop a replica snapshot (internal)
//	GET    /v1/replica/instances      list held replica snapshots
//	POST   /v1/cluster/drain          drain this replica / remove a peer
//	GET    /healthz                   liveness
//	GET    /readyz                    readiness (503 while recovering or draining)
//	GET    /statz                     cache/solve/eviction/incremental/session statistics
//
// With -pprof the profiling endpoints are mounted as well:
//
//	GET    /debug/pprof/...           net/http/pprof (profile, heap, trace, ...)
//	GET    /debug/memz                runtime heap and GC snapshot (JSON)
//
// A smoke session against a running server:
//
//	curl -s localhost:8723/instances -d '{"name":"demo","instance":{...}}'
//	curl -s localhost:8723/instances/<id>/solve -d '{"options":{"algo":"approx"}}'
//	curl -s localhost:8723/statz
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"netplace/internal/cluster"
	"netplace/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		mem       = flag.Int64("mem-budget", 0, "resident-instance memory budget in estimated bytes (0: default, <0: unbounded)")
		cache     = flag.Int("cache", 0, "solve-result cache entries (0: default, <0: disable)")
		workers   = flag.Int("workers", 0, "max concurrently executing solver runs (0: GOMAXPROCS)")
		parallel  = flag.Int("parallel", 0, "default intra-solve parallelism per solver run (0: size-aware auto, 1: serial, <0: GOMAXPROCS)")
		timeout   = flag.Duration("solve-timeout", 0, "per-solve wall-clock cap (0: default, <0: none)")
		maxBatch  = flag.Int("max-batch", 0, "max variants per what-if request (0: default)")
		maxSess   = flag.Int("max-sessions", 0, "max concurrently open streaming sessions (0: default)")
		noIncr    = flag.Bool("no-incremental", false, "answer every what-if scenario with a full solve")
		withPprof = flag.Bool("pprof", false, "expose /debug/pprof and /debug/memz profiling endpoints")
		dataDir   = flag.String("data-dir", "", "persist instances and sessions under this directory and recover them at startup (empty: in-memory)")
		noSync    = flag.Bool("no-sync", false, "skip fsyncs on the persistence path (faster; an OS crash can lose acked events)")
		maxQueue  = flag.Int("max-queue", 0, "max solve/what-if requests waiting for a worker before shedding with 429 (0: default 256, <0: unbounded)")
		fsyncIvl  = flag.Duration("fsync-interval", 0, "group-commit window: fsync session WALs at most once per interval (0: every append)")
		clusterL  = flag.String("cluster", "", "comma-separated base URLs of every cluster replica (empty: standalone); see docs/cluster.md")
		selfURL   = flag.String("self", "", "this replica's own base URL within -cluster")
		peerCache = flag.Bool("peer-cache", false, "probe cluster peers' solve caches before running a solver (needs -cluster)")
		noForward = flag.Bool("no-forward", false, "do not proxy requests for keys other replicas own (callers must route themselves)")
		peerTime  = flag.Duration("peer-timeout", 0, "per-peer cap on cache probes, gossip fetches, and health probes (0: default 2s)")
		probeIvl  = flag.Duration("probe-interval", 0, "peer /readyz health-probe interval (0: default 1s, <0: passive-only breakers)")
		bThresh   = flag.Int("breaker-threshold", 0, "consecutive peer failures before its circuit breaker opens (0: default 3)")
		bBackoff  = flag.Duration("breaker-backoff", 0, "initial breaker reopen-probe backoff, doubled per failed probe (0: default 250ms)")
		succFlag  = flag.String("successor", "", "replica URL to push instance replica snapshots to (empty: next -cluster member in sorted order)")
		drainPeer = flag.String("drain-peer", "", "drain this replica URL out of -cluster and re-home its instances, then exit")
	)
	flag.Parse()

	var peers []string
	if *clusterL != "" {
		for _, u := range strings.Split(*clusterL, ",") {
			if u = strings.TrimSpace(u); u != "" {
				peers = append(peers, strings.TrimRight(u, "/"))
			}
		}
	}
	if *drainPeer != "" {
		if err := drainPeerCmd(strings.TrimRight(*drainPeer, "/"), peers); err != nil {
			fmt.Fprintln(os.Stderr, "netplaced: drain-peer:", err)
			os.Exit(1)
		}
		return
	}
	succURL := strings.TrimRight(*succFlag, "/")
	if succURL == "" && *selfURL != "" {
		succURL = cluster.SuccessorOf(peers, strings.TrimRight(*selfURL, "/"))
	}
	srv, err := service.Open(service.Config{
		MemoryBudget:       *mem,
		CacheEntries:       *cache,
		Workers:            *workers,
		Parallel:           *parallel,
		SolveTimeout:       *timeout,
		MaxBatchVariants:   *maxBatch,
		MaxSessions:        *maxSess,
		DisableIncremental: *noIncr,
		DataDir:            *dataDir,
		NoSync:             *noSync,
		MaxSolveQueue:      *maxQueue,
		FsyncInterval:      *fsyncIvl,
		Peers:              peers,
		SelfURL:            *selfURL,
		PeerCache:          *peerCache,
		PeerTimeout:        *peerTime,
		ProbeInterval:      *probeIvl,
		BreakerThreshold:   *bThresh,
		BreakerBackoff:     *bBackoff,
		SuccessorURL:       succURL,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netplaced:", err)
		os.Exit(1)
	}
	defer srv.Close()
	if *dataDir != "" {
		st := srv.Stats()
		log.Printf("netplaced data dir %s: recovered %d instances, %d sessions", *dataDir, st.Instances, st.RecoveredSessions)
	}
	handler := srv.Handler()
	if len(peers) > 0 && !*noForward {
		if *selfURL == "" {
			fmt.Fprintln(os.Stderr, "netplaced: -cluster forwarding needs -self (or pass -no-forward)")
			os.Exit(1)
		}
		p := cluster.NewProxy(*selfURL, peers, handler, nil)
		// Share the server's breaker set with the proxy so passive
		// errors, prober verdicts, and proxy forwards all feed (and
		// honor) the same per-peer state.
		if h := srv.PeerHealth(); h != nil {
			p.UseHealth(h)
		}
		handler = p
	}
	if *withPprof {
		// Profiling endpoints are opt-in: they expose internals and cost
		// stop-the-world pauses (heap profiles, memstats), so production
		// deployments enable them deliberately.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("GET /debug/memz", handleMemz)
		handler = mux
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests briefly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Listen explicitly (rather than ListenAndServe) so the actual bound
	// address is known and logged before any request can arrive — with
	// -addr :0 the kernel picks the port, and the cluster test harness
	// reads it from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netplaced:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("netplaced listening on %s", ln.Addr())

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "netplaced:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("netplaced draining")
		// Flip /readyz to 503 first so load balancers stop sending work,
		// then let in-flight requests finish, then snapshot every live
		// session so the next start recovers with zero WAL replay.
		srv.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "netplaced: shutdown:", err)
			os.Exit(1)
		}
		if err := srv.Drain(); err != nil {
			fmt.Fprintln(os.Stderr, "netplaced: drain:", err)
			os.Exit(1)
		}
		log.Printf("netplaced drained cleanly")
	}
}

// drainPeerCmd retires one replica from a running cluster: export its
// instances while it still answers, drain it (final session snapshots
// and WAL flush, /readyz flips to 503), remove it from every surviving
// replica's ring, then re-home the exported instances across the
// survivors via a sharded upload. The drained process is left running
// in its drained state for the operator to stop.
func drainPeerCmd(target string, peers []string) error {
	if target == "" {
		return fmt.Errorf("needs a replica URL")
	}
	if len(peers) == 0 {
		return fmt.Errorf("needs -cluster listing every replica")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	tc := service.NewClient(target, nil)

	infos, err := tc.List(ctx)
	if err != nil {
		return fmt.Errorf("listing instances on %s: %w", target, err)
	}
	exports := make([]service.InstanceExport, 0, len(infos))
	for _, info := range infos {
		exp, err := tc.Export(ctx, info.ID)
		if err != nil {
			return fmt.Errorf("exporting instance %s from %s: %w", info.ID, target, err)
		}
		exports = append(exports, exp)
	}

	resp, err := tc.ClusterDrain(ctx, "")
	if err != nil {
		return fmt.Errorf("draining %s: %w", target, err)
	}
	log.Printf("netplaced drain-peer: %s %s (%d sessions drained)", target, resp.Status, resp.SessionsDrained)

	var survivors []string
	for _, p := range peers {
		if p == target {
			continue
		}
		if _, err := service.NewClient(p, nil).ClusterDrain(ctx, target); err != nil {
			return fmt.Errorf("removing %s from %s: %w", target, p, err)
		}
		survivors = append(survivors, p)
	}
	if len(survivors) == 0 {
		log.Printf("netplaced drain-peer: no survivors; %d instances not re-homed", len(exports))
		return nil
	}

	sc, err := cluster.NewShardedClient(survivors, nil)
	if err != nil {
		return err
	}
	for _, exp := range exports {
		in, err := exp.Instance.Instance()
		if err != nil {
			return fmt.Errorf("decoding exported instance %q: %w", exp.Name, err)
		}
		if _, err := sc.Upload(ctx, exp.Name, in); err != nil {
			return fmt.Errorf("re-homing instance %q: %w", exp.Name, err)
		}
	}
	log.Printf("netplaced drain-peer: re-homed %d instances across %d survivors", len(exports), len(survivors))
	return nil
}

// handleMemz renders a runtime heap/GC snapshot: the numbers an operator
// correlates with /statz when deciding whether the memory budget or the
// row-cache bound needs tuning.
func handleMemz(w http.ResponseWriter, r *http.Request) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{ //nolint:errcheck // headers are out
		"heap_alloc_bytes":    m.HeapAlloc,
		"heap_sys_bytes":      m.HeapSys,
		"heap_objects":        m.HeapObjects,
		"total_alloc_bytes":   m.TotalAlloc,
		"mallocs":             m.Mallocs,
		"frees":               m.Frees,
		"gc_cycles":           m.NumGC,
		"gc_pause_total_ms":   float64(m.PauseTotalNs) / 1e6,
		"gc_cpu_fraction":     m.GCCPUFraction,
		"next_gc_bytes":       m.NextGC,
		"goroutines":          runtime.NumGoroutine(),
		"gomaxprocs":          runtime.GOMAXPROCS(0),
		"stack_in_use_bytes":  m.StackInuse,
		"last_gc_unix_millis": m.LastGC / 1e6,
	})
}
