// Command netplaced serves the netplace placement algorithms over
// HTTP/JSON: upload an instance once, then query placements, cost
// breakdowns, what-if variants, and message-level simulations repeatedly
// without re-parsing or re-solving — identical solves are deduplicated
// in flight and served from a result cache.
//
// Usage:
//
//	netplaced [-addr :8723] [-mem-budget bytes] [-cache entries]
//	          [-workers n] [-solve-timeout 5m]
//
// Endpoints (see internal/service.Server for bodies):
//
//	POST   /instances                 upload an instance (JSON wire format)
//	GET    /instances                 list resident instances
//	GET    /instances/{id}            instance record
//	DELETE /instances/{id}            drop an instance
//	POST   /instances/{id}/solve      solve (approx, tree, optimal, baselines)
//	POST   /instances/{id}/whatif     batched options variants
//	POST   /instances/{id}/cost       price a client-supplied placement
//	POST   /instances/{id}/simulate   message-level replay of the workload
//	GET    /healthz                   liveness
//	GET    /statz                     cache/solve/eviction statistics
//
// A smoke session against a running server:
//
//	curl -s localhost:8723/instances -d '{"name":"demo","instance":{...}}'
//	curl -s localhost:8723/instances/<id>/solve -d '{"options":{"algo":"approx"}}'
//	curl -s localhost:8723/statz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netplace/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8723", "listen address")
		mem      = flag.Int64("mem-budget", 0, "resident-instance memory budget in estimated bytes (0: default, <0: unbounded)")
		cache    = flag.Int("cache", 0, "solve-result cache entries (0: default, <0: disable)")
		workers  = flag.Int("workers", 0, "max concurrently executing solver runs (0: GOMAXPROCS)")
		timeout  = flag.Duration("solve-timeout", 0, "per-solve wall-clock cap (0: default, <0: none)")
		maxBatch = flag.Int("max-batch", 0, "max variants per what-if request (0: default)")
	)
	flag.Parse()

	srv := service.New(service.Config{
		MemoryBudget:     *mem,
		CacheEntries:     *cache,
		Workers:          *workers,
		SolveTimeout:     *timeout,
		MaxBatchVariants: *maxBatch,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests briefly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("netplaced listening on %s", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "netplaced:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("netplaced shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "netplaced: shutdown:", err)
			os.Exit(1)
		}
	}
}
