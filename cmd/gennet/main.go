// Command gennet generates static data management instances: a network
// topology with transmission and storage fees plus a request workload,
// written as JSON for cmd/placer.
//
// Usage:
//
//	gennet -topology clustered -nodes 60 -objects 8 -write-frac 0.3 \
//	       -zipf 0.8 -storage 4 -seed 1 -o instance.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"netplace/internal/core"
	"netplace/internal/encode"
	"netplace/internal/gen"
	"netplace/internal/workload"
)

func main() {
	var (
		topology  = flag.String("topology", "clustered", "topology: path|star|binary-tree|random-tree|ring|grid|hypercube|complete|er|geometric|clustered")
		nodes     = flag.Int("nodes", 40, "approximate node count")
		objects   = flag.Int("objects", 4, "number of shared objects")
		meanRate  = flag.Float64("rate", 5, "mean requests per node-object pair")
		writeFrac = flag.Float64("write-frac", 0.25, "expected write share of requests")
		zipf      = flag.Float64("zipf", 0.8, "zipf exponent for object popularity (0 = uniform)")
		hotspot   = flag.Float64("hotspot", 0, "fraction of volume issued by -hotspot-nodes nodes")
		hotNodes  = flag.Int("hotspot-nodes", 0, "number of hotspot nodes")
		storage   = flag.Float64("storage", 4, "mean storage fee per node")
		sizes     = flag.Float64("size-spread", 0, "log-uniform object size spread (>1 enables the non-uniform model)")
		seed      = flag.Int64("seed", 1, "random seed")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := gen.Build(*topology, *nodes, rng)
	if err != nil {
		fatal(err)
	}
	n := g.N()
	fees := make([]float64, n)
	for v := range fees {
		fees[v] = *storage * (0.5 + rng.Float64())
	}
	objs := workload.Generate(n, workload.Spec{
		Objects:       *objects,
		MeanRate:      *meanRate,
		WriteFraction: *writeFrac,
		ZipfS:         *zipf,
		Hotspot:       *hotspot,
		HotspotNodes:  *hotNodes,
		SizeSpread:    *sizes,
	}, rng)
	in, err := core.NewInstance(g, fees, objs)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := encode.WriteInstance(w, in); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gennet: %s with %d nodes, %d edges, %d objects\n",
		*topology, n, g.M(), len(objs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gennet:", err)
	os.Exit(1)
}
